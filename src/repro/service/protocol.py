"""The framed wire protocol spoken between service client and server.

Framing is deliberately minimal: every frame is a 4-byte big-endian body
length followed by exactly that many bytes of UTF-8 JSON.  The JSON
envelope names a verb (requests) or a status (replies); binary payloads —
the ciphertexts and tokens produced by :mod:`repro.cloud.codec` — travel
base64-encoded inside the envelope, so the crypto wire format is byte-for-
byte the one the simulated :mod:`repro.cloud` stack already uses.

Everything arriving off the wire is untrusted: oversized frames, truncated
streams, junk bytes, and malformed envelopes all raise
:class:`repro.errors.WireFormatError` (a ``ProtocolError``), never a bare
``ValueError`` or a hang.  The frame-length prefix is checked *before* the
body is read, so an attacker cannot make the server buffer an arbitrarily
large frame.

Request verbs map one-to-one onto the paper's message flows plus two
operational verbs::

    upload        — message 1, the encrypted dataset        (UploadDataset)
    search        — messages 4 → 5, one range query          (SearchRequest)
    search_batch  — a vector of range queries in one frame   (token list)
    fetch         — follow-up content retrieval              (FetchRequest)
    delete        — dynamic record removal                   (DeleteRequest)
    health        — liveness + record/worker counts          (operational)
    stats         — per-verb counters + latency histograms   (operational)

``search_batch`` exists for sustained traffic: a batch amortizes framing,
envelope decode, and engine dispatch across many tokens, and its reply
carries one ``{identifiers, stats}`` entry per token *in request order* —
leakage-wise it is exactly N independent searches (each token is recorded
in the leakage log individually).

The **shards capability** extends the same envelopes for distributed
search: coordinator replies may carry a ``shards`` list (one validated
report per backend, see :func:`shard_reports_fields`), error replies may
carry partial-result fields beside the typed error object (how
``SHARD_UNAVAILABLE`` ships the matches reachable shards attested to),
and a ``fetch`` request may set ``"payloads": true`` to retrieve codec
ciphertext bytes for shard-to-shard record migration.  A plain server
never emits these fields, so old clients and new servers interoperate
unchanged.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import socket
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    FetchResponse,
    SearchRequest,
    UploadDataset,
    UploadRecord,
)
from repro.errors import ConnectionClosedError, WireFormatError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "VERBS",
    "ERR_BUSY",
    "ERR_DEADLINE",
    "ERR_PROTOCOL",
    "ERR_INTERNAL",
    "ERR_SHARD_UNAVAILABLE",
    "Request",
    "Reply",
    "encode_frame",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
    "encode_request",
    "decode_request",
    "encode_ok",
    "encode_error",
    "decode_reply",
    "upload_fields",
    "upload_from_fields",
    "search_fields",
    "search_from_fields",
    "search_wants_verify",
    "search_batch_fields",
    "search_batch_from_fields",
    "batch_results_fields",
    "batch_results_from_fields",
    "integrity_section_fields",
    "integrity_section_from_fields",
    "fetch_fields",
    "fetch_from_fields",
    "fetch_response_fields",
    "fetch_wants_payloads",
    "export_rows_fields",
    "export_rows_from_fields",
    "shard_reports_fields",
    "shard_reports_from_fields",
    "delete_fields",
    "delete_from_fields",
]

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame body.  Large enough for a multi-thousand-record
#: upload at paper-scale element sizes, small enough that a hostile length
#: prefix cannot exhaust server memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH_PREFIX = 4

VERBS = (
    "upload",
    "search",
    "search_batch",
    "fetch",
    "delete",
    "health",
    "stats",
    "cluster",
)

# Typed error codes carried in error replies.  BUSY is the only retryable
# server-originated code: the bounded queue rejected the request.
# SHARD_UNAVAILABLE is coordinator-originated: a backend shard died
# mid-fan-out, and the error envelope carries the partial results the
# reachable shards attested to.
ERR_BUSY = "BUSY"
ERR_DEADLINE = "DEADLINE"
ERR_PROTOCOL = "PROTOCOL"
ERR_INTERNAL = "INTERNAL"
ERR_SHARD_UNAVAILABLE = "SHARD_UNAVAILABLE"


@dataclass(frozen=True)
class Request:
    """One decoded request envelope."""

    verb: str
    request_id: int
    deadline_ms: float | None
    fields: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Reply:
    """One decoded reply envelope (success or typed error)."""

    request_id: int
    ok: bool
    fields: dict = field(default_factory=dict)
    error_code: str | None = None
    error_message: str = ""
    retryable: bool = False


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(body: bytes) -> bytes:
    """Prefix *body* with its 4-byte big-endian length.

    Raises:
        WireFormatError: If *body* is empty or exceeds the frame ceiling.
    """
    if not body:
        raise WireFormatError("refusing to send an empty frame")
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return len(body).to_bytes(_LENGTH_PREFIX, "big") + body


def _check_length(header: bytes) -> int:
    length = int.from_bytes(header, "big")
    if length == 0:
        raise WireFormatError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            f"declared frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return length


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame body from *reader*.

    Returns:
        The frame body, or ``None`` on a clean EOF at a frame boundary
        (the peer closed the connection between requests).

    Raises:
        WireFormatError: On a truncated frame or an oversized length prefix.
    """
    try:
        header = await reader.readexactly(_LENGTH_PREFIX)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError("truncated frame header") from exc
    length = _check_length(header)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"truncated frame: expected {length} bytes, got {len(exc.partial)}"
        ) from exc


async def write_frame(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Write one framed *body* to *writer* and drain."""
    writer.write(encode_frame(body))
    await writer.drain()


def recv_frame(sock: socket.socket) -> bytes:
    """Blocking counterpart of :func:`read_frame` for the client side.

    Raises:
        ConnectionClosedError: On a clean EOF at a frame boundary (the
            peer hung up before sending any reply byte).
        WireFormatError: On EOF mid-frame or an oversized length prefix.
    """
    header = _recv_exactly(sock, _LENGTH_PREFIX, "frame header")
    length = _check_length(header)
    return _recv_exactly(sock, length, "frame body")


def _recv_exactly(sock: socket.socket, count: int, what: str) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and what == "frame header":
                raise ConnectionClosedError(
                    "connection closed at a frame boundary"
                )
            raise WireFormatError(
                f"connection closed mid-{what} "
                f"({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, body: bytes) -> None:
    """Blocking counterpart of :func:`write_frame`."""
    sock.sendall(encode_frame(body))


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
def _decode_envelope(body: bytes) -> dict:
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(envelope, dict):
        raise WireFormatError("envelope must be a JSON object")
    if envelope.get("v") != PROTOCOL_VERSION:
        raise WireFormatError(
            f"unsupported protocol version {envelope.get('v')!r}"
        )
    return envelope


def encode_request(
    verb: str,
    request_id: int,
    fields: dict | None = None,
    deadline_ms: float | None = None,
) -> bytes:
    """Build a request frame body."""
    envelope: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "verb": verb,
        "id": request_id,
    }
    if deadline_ms is not None:
        envelope["deadline_ms"] = deadline_ms
    if fields:
        envelope.update(fields)
    return json.dumps(envelope, separators=(",", ":")).encode()


def decode_request(body: bytes) -> Request:
    """Parse and validate a request frame body.

    Raises:
        WireFormatError: On junk bytes, an unknown verb, or malformed
            envelope fields.
    """
    envelope = _decode_envelope(body)
    verb = envelope.pop("verb", None)
    if verb not in VERBS:
        raise WireFormatError(f"unknown verb {verb!r}")
    request_id = envelope.pop("id", None)
    if not isinstance(request_id, int):
        raise WireFormatError("request id must be an integer")
    deadline = envelope.pop("deadline_ms", None)
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline <= 0
    ):
        raise WireFormatError("deadline_ms must be a positive number")
    envelope.pop("v")
    return Request(
        verb=verb,
        request_id=request_id,
        deadline_ms=None if deadline is None else float(deadline),
        fields=envelope,
    )


def encode_ok(request_id: int, fields: dict | None = None) -> bytes:
    """Build a success reply frame body."""
    envelope: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
    }
    if fields:
        envelope.update(fields)
    return json.dumps(envelope, separators=(",", ":")).encode()


def encode_error(
    request_id: int,
    code: str,
    message: str,
    retryable: bool = False,
    fields: dict | None = None,
) -> bytes:
    """Build a typed error reply frame body.

    Args:
        request_id: The request being answered (0 when the id was not
            parseable from the request).
        code: One of the ``ERR_*`` codes.
        message: Human-readable detail.
        retryable: Whether a blind client retry can help.
        fields: Extra envelope fields carried *beside* the error object —
            the coordinator uses this to attach partial results (the
            ``identifiers``/``shards`` a ``SHARD_UNAVAILABLE`` reply can
            still attest to).
    """
    envelope: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retryable": retryable,
        },
    }
    if fields:
        for key, value in fields.items():
            if key not in envelope:
                envelope[key] = value
    return json.dumps(envelope, separators=(",", ":")).encode()


def decode_reply(body: bytes) -> Reply:
    """Parse and validate a reply frame body.

    Raises:
        WireFormatError: On junk bytes or a malformed envelope.
    """
    envelope = _decode_envelope(body)
    request_id = envelope.pop("id", None)
    if not isinstance(request_id, int):
        raise WireFormatError("reply id must be an integer")
    ok = envelope.pop("ok", None)
    if not isinstance(ok, bool):
        raise WireFormatError("reply must carry a boolean 'ok'")
    envelope.pop("v")
    if ok:
        return Reply(request_id=request_id, ok=True, fields=envelope)
    error = envelope.pop("error", None)
    if not isinstance(error, dict) or not isinstance(error.get("code"), str):
        raise WireFormatError("error reply must carry a typed error object")
    return Reply(
        request_id=request_id,
        ok=False,
        fields=envelope,
        error_code=error["code"],
        error_message=str(error.get("message", "")),
        retryable=bool(error.get("retryable", False)),
    )


# ----------------------------------------------------------------------
# Payload field conversions (cloud.messages <-> envelope fields)
# ----------------------------------------------------------------------
def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(value, what: str) -> bytes:
    if not isinstance(value, str):
        raise WireFormatError(f"{what} must be a base64 string")
    try:
        return base64.b64decode(value.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError, ValueError) as exc:
        raise WireFormatError(f"{what} is not valid base64: {exc}") from exc


def _identifier_list(value, what: str) -> tuple[int, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, int) for item in value
    ):
        raise WireFormatError(f"{what} must be a list of integers")
    return tuple(value)


def upload_fields(message: UploadDataset) -> dict:
    """Envelope fields for an ``upload`` request.

    Integrity tags travel as optional per-record keys, emitted only when
    present — an upload from a pre-integrity owner encodes byte-for-byte
    as before.
    """
    entries = []
    for record in message.records:
        entry = {
            "id": record.identifier,
            "payload": _b64(record.payload),
            "content": _b64(record.content),
        }
        if record.tag:
            entry["tag"] = _b64(record.tag)
        if record.mtag:
            entry["mtag"] = _b64(record.mtag)
        entries.append(entry)
    return {"records": entries}


def upload_from_fields(fields: dict) -> UploadDataset:
    """Rebuild the :class:`UploadDataset` from ``upload`` request fields.

    Raises:
        WireFormatError: On malformed record entries.
    """
    entries = fields.get("records")
    if not isinstance(entries, list):
        raise WireFormatError("upload must carry a list of records")
    records = []
    for entry in entries:
        if not isinstance(entry, dict) or not isinstance(entry.get("id"), int):
            raise WireFormatError("each record needs an integer id")
        records.append(
            UploadRecord(
                identifier=entry["id"],
                payload=_unb64(entry.get("payload"), "record payload"),
                content=_unb64(entry.get("content", ""), "record content"),
                tag=_unb64(entry.get("tag", ""), "record tag"),
                mtag=_unb64(entry.get("mtag", ""), "record mtag"),
            )
        )
    return UploadDataset(records=tuple(records))


def search_fields(message: SearchRequest, verify: bool = False) -> dict:
    """Envelope fields for a ``search`` request.

    With *verify* set, the request asks the server to attach per-match
    authenticity tags and a completeness proof to the reply
    (:mod:`repro.integrity`).  The flag is omitted when false, so
    unverified searches encode exactly as before.
    """
    fields: dict[str, Any] = {"token": _b64(message.payload)}
    if verify:
        fields["verify"] = True
    return fields


def search_from_fields(fields: dict) -> SearchRequest:
    """Rebuild the :class:`SearchRequest` from ``search`` request fields.

    Raises:
        WireFormatError: On a missing or malformed token field.
    """
    return SearchRequest(payload=_unb64(fields.get("token"), "search token"))


def search_wants_verify(fields: dict) -> bool:
    """Whether a ``search`` request asks for an integrity section.

    Raises:
        WireFormatError: If the flag is present but not a boolean.
    """
    flag = fields.get("verify", False)
    if not isinstance(flag, bool):
        raise WireFormatError("'verify' must be a boolean")
    return flag


def search_batch_fields(token_payloads) -> dict:
    """Envelope fields for a ``search_batch`` request.

    Raises:
        WireFormatError: On an empty batch (a zero-token batch has no
            defined reply shape; send nothing instead).
    """
    payloads = list(token_payloads)
    if not payloads:
        raise WireFormatError("search_batch needs at least one token")
    return {"tokens": [_b64(payload) for payload in payloads]}


def search_batch_from_fields(fields: dict) -> tuple[bytes, ...]:
    """Rebuild the token payload vector from ``search_batch`` fields.

    Raises:
        WireFormatError: On a missing, empty, or malformed token list.
    """
    tokens = fields.get("tokens")
    if not isinstance(tokens, list) or not tokens:
        raise WireFormatError(
            "search_batch must carry a non-empty list of tokens"
        )
    return tuple(
        _unb64(token, f"batch token {index}")
        for index, token in enumerate(tokens)
    )


def batch_results_fields(results) -> dict:
    """Envelope fields for a ``search_batch`` success reply.

    Each result is ``(identifiers, stats_dict)``; entries are emitted in
    request order, which is the only pairing the client has.
    """
    return {
        "results": [
            {"identifiers": list(identifiers), "stats": dict(stats)}
            for identifiers, stats in results
        ]
    }


def batch_results_from_fields(
    fields: dict,
) -> tuple[tuple[tuple[int, ...], dict], ...]:
    """Rebuild ``(identifiers, stats)`` pairs from a batch reply.

    Raises:
        WireFormatError: On malformed result entries.
    """
    entries = fields.get("results")
    if not isinstance(entries, list):
        raise WireFormatError("search_batch reply must carry 'results'")
    results = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise WireFormatError("each batch result must be an object")
        identifiers = entry.get("identifiers")
        if not isinstance(identifiers, list) or not all(
            isinstance(i, int) for i in identifiers
        ):
            raise WireFormatError(
                "batch result must carry an identifier list"
            )
        stats = entry.get("stats")
        results.append(
            (
                tuple(identifiers),
                stats if isinstance(stats, dict) else {},
            )
        )
    return tuple(results)


def integrity_section_fields(matches, shards) -> dict:
    """Envelope ``integrity`` field for a verifiable search reply.

    *matches* is a list of ``[identifier, digest_hex, tag_hex]`` entries
    (a coordinator appends a fourth element, the shard index); *shards*
    is a list of completeness-proof dicts
    (:meth:`repro.integrity.ShardIntegrity.proof_for` output, to which a
    coordinator adds the shard's ``addr``).
    """
    return {
        "integrity": {
            "matches": [list(entry) for entry in matches],
            "shards": [dict(proof) for proof in shards],
        }
    }


def integrity_section_from_fields(fields: dict) -> dict | None:
    """Extract and shape-check a reply's ``integrity`` section.

    Returns ``None`` when the reply carries no section (the search did
    not ask for verification).  Only the envelope *shape* is checked
    here — the cryptographic checks belong to
    :class:`repro.integrity.ResultVerifier`, which re-validates every
    byte anyway because the section itself is the attack surface.

    Raises:
        WireFormatError: On a structurally malformed section.
    """
    section = fields.get("integrity")
    if section is None:
        return None
    if (
        not isinstance(section, dict)
        or not isinstance(section.get("matches"), list)
        or not isinstance(section.get("shards"), list)
    ):
        raise WireFormatError(
            "'integrity' must carry 'matches' and 'shards' lists"
        )
    return section


def fetch_fields(message: FetchRequest) -> dict:
    """Envelope fields for a ``fetch`` request."""
    return {"ids": list(message.identifiers)}


def fetch_from_fields(fields: dict) -> FetchRequest:
    """Rebuild the :class:`FetchRequest` from ``fetch`` request fields.

    Raises:
        WireFormatError: On a malformed id list.
    """
    return FetchRequest(identifiers=_identifier_list(fields.get("ids"), "ids"))


def fetch_response_fields(response: FetchResponse) -> dict:
    """Envelope fields for a ``fetch`` success reply."""
    return {
        "contents": [
            [identifier, _b64(body)] for identifier, body in response.contents
        ]
    }


def fetch_wants_payloads(fields: dict) -> bool:
    """Whether a ``fetch`` request asks for searchable payload bytes too.

    A plain fetch returns only record *contents* (the traditionally
    encrypted bodies).  A fetch with ``"payloads": true`` additionally
    returns the codec ciphertext bytes — the coordinator uses this to
    migrate records between shards during a rebalance.  Nothing new is
    exposed: both byte strings are exactly what the honest-but-curious
    server already stores.

    Raises:
        WireFormatError: If the flag is present but not a boolean.
    """
    flag = fields.get("payloads", False)
    if not isinstance(flag, bool):
        raise WireFormatError("'payloads' must be a boolean")
    return flag


def export_rows_fields(rows) -> dict:
    """Envelope fields for a payload-bearing ``fetch`` success reply.

    Each row is ``(identifier, payload_bytes, content_bytes)`` or the
    tag-bearing ``(identifier, payload, content, tag, mtag)`` — tags ride
    along so record migration between shards preserves verifiability.
    """
    encoded = []
    for row in rows:
        entry = [row[0], _b64(row[1]), _b64(row[2])]
        if len(row) >= 5 and (row[3] or row[4]):
            entry.extend((_b64(row[3]), _b64(row[4])))
        encoded.append(entry)
    return {"records": encoded}


def export_rows_from_fields(
    fields: dict,
) -> tuple[tuple[int, bytes, bytes, bytes, bytes], ...]:
    """Rebuild ``(identifier, payload, content, tag, mtag)`` export rows.

    Rows from a pre-integrity server have three elements; their tags
    come back empty.

    Raises:
        WireFormatError: On malformed row entries.
    """
    entries = fields.get("records")
    if not isinstance(entries, list):
        raise WireFormatError("export reply must carry a list of records")
    rows = []
    for entry in entries:
        if (
            not isinstance(entry, list)
            or len(entry) not in (3, 5)
            or not isinstance(entry[0], int)
        ):
            raise WireFormatError(
                "each export row must be [id, payload, content] or "
                "[id, payload, content, tag, mtag]"
            )
        tag = _unb64(entry[3], "export tag") if len(entry) == 5 else b""
        mtag = _unb64(entry[4], "export mtag") if len(entry) == 5 else b""
        rows.append(
            (
                entry[0],
                _unb64(entry[1], "export payload"),
                _unb64(entry[2], "export content"),
                tag,
                mtag,
            )
        )
    return tuple(rows)


#: Keys a shard report may carry beyond the required ``addr``/``ok`` pair.
_SHARD_REPORT_OPTIONAL = {
    "records": int,
    "stored": int,
    "removed": int,
    "error": str,
    "status": str,
    "stats": dict,
    "integrity": dict,
    # Replicated-coordinator reports: which partition the replica
    # serves, and the explicit couldn't-scrape marker stats degrades to
    # instead of failing the whole aggregate.
    "partition": str,
    "unreachable": bool,
}


def shard_reports_fields(reports) -> dict:
    """Envelope ``shards`` field for a coordinator reply.

    Each report is a dict with at least ``addr`` (``host:port``) and
    ``ok``; optional detail keys (``records``, ``stored``, ``removed``,
    ``error``, ``status``, ``stats``) describe what that shard answered.
    """
    return {"shards": [dict(report) for report in reports]}


def shard_reports_from_fields(fields: dict) -> tuple[dict, ...]:
    """Validate and return the ``shards`` reports of a coordinator reply.

    Returns an empty tuple when the field is absent (the reply came from a
    plain single server, which never emits it).

    Raises:
        WireFormatError: On a malformed ``shards`` field.
    """
    entries = fields.get("shards")
    if entries is None:
        return ()
    if not isinstance(entries, list):
        raise WireFormatError("'shards' must be a list of shard reports")
    reports = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise WireFormatError("each shard report must be an object")
        if not isinstance(entry.get("addr"), str):
            raise WireFormatError("shard report needs a string 'addr'")
        if not isinstance(entry.get("ok"), bool):
            raise WireFormatError("shard report needs a boolean 'ok'")
        for key, expected in _SHARD_REPORT_OPTIONAL.items():
            if key not in entry:
                continue
            value = entry[key]
            if not isinstance(value, expected) or (
                expected is int and isinstance(value, bool)
            ):
                raise WireFormatError(
                    f"shard report field {key!r} must be "
                    f"{expected.__name__}"
                )
        reports.append(dict(entry))
    return tuple(reports)


def delete_fields(message: DeleteRequest) -> dict:
    """Envelope fields for a ``delete`` request."""
    return {"ids": list(message.identifiers)}


def delete_from_fields(fields: dict) -> DeleteRequest:
    """Rebuild the :class:`DeleteRequest` from ``delete`` request fields.

    Raises:
        WireFormatError: On a malformed id list.
    """
    return DeleteRequest(identifiers=_identifier_list(fields.get("ids"), "ids"))
