"""Blocking client for the CRSE query service.

One call, one connection: every request dials the server, sends one frame,
reads one reply, and hangs up.  That keeps retry semantics trivial to
reason about — a retried request can never collide with a half-read reply
from an earlier attempt on a shared connection.

Retry policy is exponential backoff with jitter, and it is deliberately
narrow about what it retries:

* **retryable** — connection failures (the server is not up yet, or its
  listen queue overflowed) and typed ``BUSY`` rejections (the server's
  bounded queue was full; it did *not* execute the request);
* **not retryable** — ``PROTOCOL`` errors (retrying malformed bytes cannot
  help), ``DEADLINE`` (the time budget is spent — the caller decides),
  ``INTERNAL`` errors, and mid-request timeouts (the server may have
  executed the request, so blind replay could double-apply an upload).
"""

from __future__ import annotations

import base64
import random
import socket
import time

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    SearchRequest,
    SearchResponse,
    UploadDataset,
)
from repro.errors import (
    DeadlineExceededError,
    IntegrityError,
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
    ShardUnavailableError,
    WireFormatError,
)
from repro.service import protocol

__all__ = ["RetryPolicy", "ServiceClient"]


def _partial_identifiers(fields: dict) -> tuple[int, ...]:
    """Partial match ids riding on a SHARD_UNAVAILABLE error reply.

    Raises:
        WireFormatError: If the field is present but malformed.
    """
    identifiers = fields.get("identifiers")
    if identifiers is None:
        return ()
    if not isinstance(identifiers, list) or not all(
        isinstance(i, int) for i in identifiers
    ):
        raise WireFormatError("partial identifiers must be a list of ints")
    return tuple(identifiers)


class RetryPolicy:
    """Exponential backoff with jitter for retryable failures."""

    def __init__(
        self,
        attempts: int = 4,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
    ):
        """Configure the schedule.

        Args:
            attempts: Total tries (first attempt included); minimum 1.
            base_delay_s: Delay before the first retry.
            max_delay_s: Ceiling on any single delay.
            multiplier: Growth factor per retry.
            jitter: Fraction of each delay randomized away (0 disables;
                0.5 means a delay lands uniformly in [0.5·d, d]), so
                synchronized clients do not retry in lockstep.
        """
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.jitter = jitter

    def delay_s(self, retry_index: int, rng: random.Random) -> float:
        """Jittered delay before retry number *retry_index* (0-based)."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier**retry_index,
        )
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


class ServiceClient:
    """Blocking, retrying client for one service endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ):
        """Point the client at ``host:port``.

        Args:
            host: Server host.
            port: Server port.
            timeout_s: Socket timeout for connect and for each reply.
            retry: Backoff schedule; defaults to 4 attempts.
            rng: Jitter randomness (not security-relevant; injectable for
                deterministic tests).
        """
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self._rng = rng or random.Random()
        self._next_request_id = 1

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _roundtrip_once(self, body: bytes) -> protocol.Reply:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            sock.settimeout(self.timeout_s)
            protocol.send_frame(sock, body)
            reply_body = protocol.recv_frame(sock)
        except socket.timeout as exc:
            raise ServiceError(
                f"no reply within {self.timeout_s} s (request may still "
                "have executed server-side; not retrying)"
            ) from exc
        except OSError as exc:
            raise ServiceError(
                f"connection to {self.host}:{self.port} failed "
                f"mid-request: {exc}"
            ) from exc
        finally:
            sock.close()
        return protocol.decode_reply(reply_body)

    def _request(
        self,
        verb: str,
        fields: dict | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        request_id = self._next_request_id
        self._next_request_id += 1
        body = protocol.encode_request(
            verb, request_id, fields=fields, deadline_ms=deadline_ms
        )
        retries_left = self.retry.attempts - 1
        retry_index = 0
        while True:
            try:
                reply = self._roundtrip_once(body)
            except ServiceConnectionError:
                if retries_left <= 0:
                    raise
                retries_left -= 1
                time.sleep(self.retry.delay_s(retry_index, self._rng))
                retry_index += 1
                continue
            # Id 0 is the server's "I could not even parse your request
            # id" placeholder — legitimate only on *error* replies (the
            # framing/envelope failed before the id was read).  A success
            # reply must always echo our id; accepting 0 there would let
            # a confused server hand us another request's answer.
            if reply.request_id != request_id and not (
                reply.request_id == 0 and not reply.ok
            ):
                raise ProtocolError(
                    f"reply for request {reply.request_id}, "
                    f"expected {request_id}"
                )
            if reply.ok:
                return reply.fields
            if reply.error_code == protocol.ERR_BUSY:
                if retries_left <= 0:
                    raise ServiceBusyError(reply.error_message)
                retries_left -= 1
                time.sleep(self.retry.delay_s(retry_index, self._rng))
                retry_index += 1
                continue
            if reply.error_code == protocol.ERR_DEADLINE:
                raise DeadlineExceededError(reply.error_message)
            if reply.error_code == protocol.ERR_PROTOCOL:
                raise ProtocolError(reply.error_message)
            if reply.error_code == protocol.ERR_SHARD_UNAVAILABLE:
                raise ShardUnavailableError(
                    reply.error_message,
                    partial_identifiers=_partial_identifiers(reply.fields),
                    shards=protocol.shard_reports_from_fields(reply.fields),
                )
            raise ServiceError(
                f"{reply.error_code}: {reply.error_message}"
            )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def upload(
        self, dataset: UploadDataset, deadline_ms: float | None = None
    ) -> int:
        """Upload an encrypted dataset; returns the server's record count.

        Raises:
            ServiceConnectionError: If the server stays unreachable.
            ServiceBusyError: If backpressure persists through all retries.
            ProtocolError: On malformed payloads (non-retryable).
        """
        fields = self._request(
            "upload", protocol.upload_fields(dataset), deadline_ms=deadline_ms
        )
        stored = fields.get("stored")
        if not isinstance(stored, int):
            raise WireFormatError("upload reply missing 'stored' count")
        return stored

    def search(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict]:
        """Run one search; returns the response and the server's scan stats.

        Args:
            token_payload: The encoded search token (message 4).
            deadline_ms: Server-enforced time budget for this query.

        Raises:
            DeadlineExceededError: If the server's deadline tripped.
            ServiceBusyError: If backpressure persists through all retries.
        """
        fields = self._request(
            "search",
            protocol.search_fields(SearchRequest(payload=token_payload)),
            deadline_ms=deadline_ms,
        )
        response, stats = self._parse_search_reply(fields)
        return response, stats

    def search_verified(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict, dict]:
        """Run one search with a completeness proof attached.

        Like :meth:`search`, but the request asks the server to attest
        its answer: the reply must carry an integrity section (per-match
        tags plus a per-shard completeness proof) that the caller feeds
        to :class:`repro.integrity.ResultVerifier`.

        Returns:
            ``(response, stats, section)`` where *section* is the raw
            integrity section dict from the wire.

        Raises:
            IntegrityError: If the server answered without the requested
                integrity section (a proof-stripping server is treated
                exactly like a tampering one).
            ProtocolError: If the server cannot build a proof (e.g. it
                holds untagged records).
        """
        fields = self._request(
            "search",
            protocol.search_fields(
                SearchRequest(payload=token_payload), verify=True
            ),
            deadline_ms=deadline_ms,
        )
        response, stats = self._parse_search_reply(fields)
        section = protocol.integrity_section_from_fields(fields)
        if section is None:
            raise IntegrityError(
                "verification requested but the reply carries no "
                "integrity section"
            )
        return response, stats, section

    def _parse_search_reply(
        self, fields: dict
    ) -> tuple[SearchResponse, dict]:
        identifiers = fields.get("identifiers")
        if not isinstance(identifiers, list) or not all(
            isinstance(i, int) for i in identifiers
        ):
            raise WireFormatError("search reply missing identifier list")
        stats = fields.get("stats")
        return (
            SearchResponse(identifiers=tuple(identifiers)),
            stats if isinstance(stats, dict) else {},
        )

    def fetch(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> dict[int, bytes]:
        """Fetch encrypted record contents for *identifiers*."""
        fields = self._request(
            "fetch",
            protocol.fetch_fields(FetchRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        contents = fields.get("contents")
        if not isinstance(contents, list):
            raise WireFormatError("fetch reply missing contents")
        out: dict[int, bytes] = {}
        for entry in contents:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)
            ):
                raise WireFormatError("malformed fetch reply entry")
            out[entry[0]] = base64.b64decode(entry[1].encode("ascii"))
        return out

    def export(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> tuple[tuple[int, bytes, bytes, bytes, bytes], ...]:
        """Fetch records *with* their searchable payload bytes.

        Used by the coordinator to migrate records between shards on a
        membership change: the returned ``(identifier, payload, content,
        tag, mtag)`` rows are exactly what an upload to another shard
        needs.  The tag fields are empty for records stored before the
        integrity subsystem existed.
        """
        fields = self._request(
            "fetch",
            {
                **protocol.fetch_fields(FetchRequest(identifiers=identifiers)),
                "payloads": True,
            },
            deadline_ms=deadline_ms,
        )
        return protocol.export_rows_from_fields(fields)

    def delete(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> int:
        """Delete records by identifier; returns how many were removed."""
        fields = self._request(
            "delete",
            protocol.delete_fields(DeleteRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        removed = fields.get("removed")
        if not isinstance(removed, int):
            raise WireFormatError("delete reply missing 'removed' count")
        return removed

    def health(self, deadline_ms: float | None = None) -> dict:
        """Liveness probe: status, record count, worker count."""
        return self._request("health", deadline_ms=deadline_ms)

    def stats(self, deadline_ms: float | None = None) -> dict:
        """The server's metrics snapshot (counters, latency histograms)."""
        return self._request("stats", deadline_ms=deadline_ms)
