"""Blocking client for the CRSE query service.

The client keeps **one persistent connection** and reuses it across
requests: strict request→reply on a single socket, so a retried request
can never collide with a half-read reply from an earlier attempt.  Dialing
per request (the original design) costs a TCP handshake on every query,
which at sustained load dominates small-search latency.

Reuse needs one new failure case handled: the server (or a proxy between)
may close an *idle* connection between our requests, which we only notice
when the next send or reply read fails.  That race is recovered
transparently — redial and resend once — but **only** when the failed
request went out on a *reused* connection and no reply byte arrived: a
clean EOF there means the peer hung up before reading us, or at worst the
idle-close crossed our send on the wire.  The same EOF on a *fresh*
connection is a real mid-request failure (the server accepted, may have
executed, and dropped the reply), so it raises instead of replaying —
blind replay could double-apply an upload.

Retry policy is exponential backoff with jitter, and it is deliberately
narrow about what it retries:

* **retryable** — connection failures (the server is not up yet, or its
  listen queue overflowed) and typed ``BUSY`` rejections (the server's
  bounded queue was full; it did *not* execute the request);
* **not retryable** — ``PROTOCOL`` errors (retrying malformed bytes cannot
  help), ``DEADLINE`` (the time budget is spent — the caller decides),
  ``INTERNAL`` errors, and mid-request timeouts (the server may have
  executed the request, so blind replay could double-apply an upload).
"""

from __future__ import annotations

import base64
import random
import socket
import time

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    SearchRequest,
    SearchResponse,
    UploadDataset,
)
from repro.errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    IntegrityError,
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
    ShardUnavailableError,
    WireFormatError,
)
from repro.service import protocol

__all__ = ["DEADLINE_GRACE_MS", "RetryPolicy", "ServiceClient"]

#: Slack added on top of a request's remaining deadline when deriving
#: the per-request socket timeout: the server enforces the deadline and
#: replies with a typed ``DEADLINE`` error, so the socket should stay
#: open just long enough to receive it — but no longer, or a stalled
#: (not dead) server would pin the caller past its budget and eat a
#: failover sibling's chance to answer in time.
DEADLINE_GRACE_MS = 250.0


def _partial_identifiers(fields: dict) -> tuple[int, ...]:
    """Partial match ids riding on a SHARD_UNAVAILABLE error reply.

    Raises:
        WireFormatError: If the field is present but malformed.
    """
    identifiers = fields.get("identifiers")
    if identifiers is None:
        return ()
    if not isinstance(identifiers, list) or not all(
        isinstance(i, int) for i in identifiers
    ):
        raise WireFormatError("partial identifiers must be a list of ints")
    return tuple(identifiers)


def _parse_search_reply(fields: dict) -> tuple[SearchResponse, dict]:
    """Extract ``(response, stats)`` from a search reply's fields.

    Shared by the blocking and async clients — the wire shape is the
    same regardless of transport.

    Raises:
        WireFormatError: On a missing or malformed identifier list.
    """
    identifiers = fields.get("identifiers")
    if not isinstance(identifiers, list) or not all(
        isinstance(i, int) for i in identifiers
    ):
        raise WireFormatError("search reply missing identifier list")
    stats = fields.get("stats")
    return (
        SearchResponse(identifiers=tuple(identifiers)),
        stats if isinstance(stats, dict) else {},
    )


def _parse_batch_reply(
    fields: dict, expected: int
) -> tuple[tuple[SearchResponse, dict], ...]:
    """Extract per-token ``(response, stats)`` pairs from a batch reply.

    Raises:
        WireFormatError: If the reply does not carry exactly *expected*
            results (position is the only token↔result pairing).
    """
    results = protocol.batch_results_from_fields(fields)
    if len(results) != expected:
        raise WireFormatError(
            f"batch reply has {len(results)} results for {expected} tokens"
        )
    return tuple(
        (SearchResponse(identifiers=identifiers), stats)
        for identifiers, stats in results
    )


def _error_from_reply(reply: protocol.Reply) -> Exception:
    """Map a non-BUSY typed error reply onto the exception hierarchy.

    BUSY is excluded because it is the one code the retry loops handle
    in place (it changes control flow, not just the raised type).
    """
    if reply.error_code == protocol.ERR_DEADLINE:
        return DeadlineExceededError(reply.error_message)
    if reply.error_code == protocol.ERR_PROTOCOL:
        return ProtocolError(reply.error_message)
    if reply.error_code == protocol.ERR_SHARD_UNAVAILABLE:
        return ShardUnavailableError(
            reply.error_message,
            partial_identifiers=_partial_identifiers(reply.fields),
            shards=protocol.shard_reports_from_fields(reply.fields),
        )
    return ServiceError(f"{reply.error_code}: {reply.error_message}")


class RetryPolicy:
    """Exponential backoff with jitter for retryable failures."""

    def __init__(
        self,
        attempts: int = 4,
        base_delay_s: float = 0.05,
        max_delay_s: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
    ):
        """Configure the schedule.

        Args:
            attempts: Total tries (first attempt included); minimum 1.
            base_delay_s: Delay before the first retry.
            max_delay_s: Ceiling on any single delay.
            multiplier: Growth factor per retry.
            jitter: Fraction of each delay randomized away (0 disables;
                0.5 means a delay lands uniformly in [0.5·d, d]), so
                synchronized clients do not retry in lockstep.
        """
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.jitter = jitter

    def delay_s(self, retry_index: int, rng: random.Random) -> float:
        """Jittered delay before retry number *retry_index* (0-based)."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier**retry_index,
        )
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


class ServiceClient:
    """Blocking, retrying client for one service endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ):
        """Point the client at ``host:port``.

        Args:
            host: Server host.
            port: Server port.
            timeout_s: Socket timeout for connect and for each reply.
            retry: Backoff schedule; defaults to 4 attempts.
            rng: Jitter randomness (not security-relevant; injectable for
                deterministic tests).
        """
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self._rng = rng or random.Random()
        self._next_request_id = 1
        self._sock: socket.socket | None = None
        self._connections_opened = 0

    @property
    def connections_opened(self) -> int:
        """How many TCP connections this client has dialed (ever).

        A persistent client serving N healthy sequential requests reports
        1 here; tests use the counter to pin the reuse behaviour down.
        """
        return self._connections_opened

    def close(self) -> None:
        """Close the cached connection (safe to call repeatedly)."""
        self._drop_socket()

    def __enter__(self) -> ServiceClient:
        """Enter a ``with`` block; the client needs no setup."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the cached connection on block exit."""
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _ensure_socket(self, timeout_s: float) -> tuple[socket.socket, bool]:
        """Return ``(socket, fresh)``, dialing only if none is cached."""
        if self._sock is not None:
            self._sock.settimeout(timeout_s)
            return self._sock, False
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout_s
            )
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        sock.settimeout(timeout_s)
        self._sock = sock
        self._connections_opened += 1
        return sock, True

    def _drop_socket(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def _roundtrip_once(
        self, body: bytes, timeout_s: float
    ) -> protocol.Reply:
        # A clean EOF (or send failure) on a REUSED connection is the
        # idle-close race: the server hung up between our requests, and
        # our send crossed the close on the wire.  Redial and resend once.
        # The same failure on a FRESH connection means the server accepted
        # this very request and dropped the reply — it may have executed,
        # so replaying could double-apply; raise instead.
        resent = False
        while True:
            sock, fresh = self._ensure_socket(timeout_s)
            try:
                protocol.send_frame(sock, body)
                reply_body = protocol.recv_frame(sock)
            except socket.timeout as exc:
                self._drop_socket()
                raise ServiceError(
                    f"no reply within {timeout_s:.3f} s (request may "
                    "still have executed server-side; not retrying)"
                ) from exc
            except ConnectionClosedError as exc:
                self._drop_socket()
                if not fresh and not resent:
                    resent = True
                    continue
                raise ServiceError(
                    f"connection to {self.host}:{self.port} closed before "
                    "a reply (request may still have executed server-side; "
                    "not retrying)"
                ) from exc
            except WireFormatError:
                # Mid-frame truncation or junk bytes: the reply started
                # arriving, so the request definitely executed.  Never
                # resend; surface the typed wire error.
                self._drop_socket()
                raise
            except OSError as exc:
                self._drop_socket()
                if not fresh and not resent:
                    resent = True
                    continue
                raise ServiceError(
                    f"connection to {self.host}:{self.port} failed "
                    f"mid-request: {exc}"
                ) from exc
            return protocol.decode_reply(reply_body)

    def _request(
        self,
        verb: str,
        fields: dict | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        request_id = self._next_request_id
        self._next_request_id += 1
        body = protocol.encode_request(
            verb, request_id, fields=fields, deadline_ms=deadline_ms
        )
        # With a deadline, both the socket timeout and the retry budget
        # derive from it: a stalled-but-alive server is abandoned when
        # the budget (plus grace for the server's own DEADLINE reply)
        # runs out, and backoff sleeps never outlive it.  A coordinator
        # failing over between replicas relies on this to fit a sibling
        # attempt inside the caller's original deadline.
        deadline_at = (
            None
            if deadline_ms is None
            else time.perf_counter() + deadline_ms / 1000.0
        )
        retries_left = self.retry.attempts - 1
        retry_index = 0
        while True:
            timeout_s = self.timeout_s
            if deadline_at is not None:
                remaining_s = deadline_at - time.perf_counter()
                if remaining_s <= 0:
                    raise DeadlineExceededError(
                        f"deadline of {deadline_ms} ms spent client-side "
                        "before a reply"
                    )
                timeout_s = min(
                    timeout_s, remaining_s + DEADLINE_GRACE_MS / 1000.0
                )
            try:
                reply = self._roundtrip_once(body, timeout_s)
            except ServiceConnectionError:
                if retries_left <= 0 or self._deadline_spent(
                    deadline_at, retry_index
                ):
                    raise
                retries_left -= 1
                time.sleep(self.retry.delay_s(retry_index, self._rng))
                retry_index += 1
                continue
            # Id 0 is the server's "I could not even parse your request
            # id" placeholder — legitimate only on *error* replies (the
            # framing/envelope failed before the id was read).  A success
            # reply must always echo our id; accepting 0 there would let
            # a confused server hand us another request's answer.
            if reply.request_id != request_id and not (
                reply.request_id == 0 and not reply.ok
            ):
                raise ProtocolError(
                    f"reply for request {reply.request_id}, "
                    f"expected {request_id}"
                )
            if reply.ok:
                return reply.fields
            if reply.error_code == protocol.ERR_BUSY:
                if retries_left <= 0 or self._deadline_spent(
                    deadline_at, retry_index
                ):
                    raise ServiceBusyError(reply.error_message)
                retries_left -= 1
                time.sleep(self.retry.delay_s(retry_index, self._rng))
                retry_index += 1
                continue
            raise _error_from_reply(reply)

    def _deadline_spent(
        self, deadline_at: float | None, retry_index: int
    ) -> bool:
        """Whether the next backoff sleep would outlive the deadline."""
        if deadline_at is None:
            return False
        # Compare against the schedule's full (pre-jitter) delay so the
        # decision does not depend on the jitter draw.
        next_delay_s = min(
            self.retry.base_delay_s * (self.retry.multiplier**retry_index),
            self.retry.max_delay_s,
        )
        return time.perf_counter() + next_delay_s >= deadline_at

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def upload(
        self, dataset: UploadDataset, deadline_ms: float | None = None
    ) -> int:
        """Upload an encrypted dataset; returns the server's record count.

        Raises:
            ServiceConnectionError: If the server stays unreachable.
            ServiceBusyError: If backpressure persists through all retries.
            ProtocolError: On malformed payloads (non-retryable).
        """
        fields = self._request(
            "upload", protocol.upload_fields(dataset), deadline_ms=deadline_ms
        )
        stored = fields.get("stored")
        if not isinstance(stored, int):
            raise WireFormatError("upload reply missing 'stored' count")
        return stored

    def search(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict]:
        """Run one search; returns the response and the server's scan stats.

        Args:
            token_payload: The encoded search token (message 4).
            deadline_ms: Server-enforced time budget for this query.

        Raises:
            DeadlineExceededError: If the server's deadline tripped.
            ServiceBusyError: If backpressure persists through all retries.
        """
        fields = self._request(
            "search",
            protocol.search_fields(SearchRequest(payload=token_payload)),
            deadline_ms=deadline_ms,
        )
        response, stats = _parse_search_reply(fields)
        return response, stats

    def search_verified(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict, dict]:
        """Run one search with a completeness proof attached.

        Like :meth:`search`, but the request asks the server to attest
        its answer: the reply must carry an integrity section (per-match
        tags plus a per-shard completeness proof) that the caller feeds
        to :class:`repro.integrity.ResultVerifier`.

        Returns:
            ``(response, stats, section)`` where *section* is the raw
            integrity section dict from the wire.

        Raises:
            IntegrityError: If the server answered without the requested
                integrity section (a proof-stripping server is treated
                exactly like a tampering one).
            ProtocolError: If the server cannot build a proof (e.g. it
                holds untagged records).
        """
        fields = self._request(
            "search",
            protocol.search_fields(
                SearchRequest(payload=token_payload), verify=True
            ),
            deadline_ms=deadline_ms,
        )
        response, stats = _parse_search_reply(fields)
        section = protocol.integrity_section_from_fields(fields)
        if section is None:
            raise IntegrityError(
                "verification requested but the reply carries no "
                "integrity section"
            )
        return response, stats, section

    def search_batch(
        self,
        token_payloads: tuple[bytes, ...],
        deadline_ms: float | None = None,
    ) -> tuple[tuple[SearchResponse, dict], ...]:
        """Run several searches in one round trip.

        The server answers position-for-position: result *i* belongs to
        token *i*.  One frame each way amortizes framing and dispatch
        overhead; leakage-wise the batch is exactly ``len(token_payloads)``
        independent searches.

        Raises:
            WireFormatError: If the batch is empty or the reply does not
                carry one result per token.
        """
        payloads = tuple(token_payloads)
        fields = self._request(
            "search_batch",
            protocol.search_batch_fields(payloads),
            deadline_ms=deadline_ms,
        )
        return _parse_batch_reply(fields, len(payloads))

    def fetch(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> dict[int, bytes]:
        """Fetch encrypted record contents for *identifiers*."""
        fields = self._request(
            "fetch",
            protocol.fetch_fields(FetchRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        contents = fields.get("contents")
        if not isinstance(contents, list):
            raise WireFormatError("fetch reply missing contents")
        out: dict[int, bytes] = {}
        for entry in contents:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)
            ):
                raise WireFormatError("malformed fetch reply entry")
            out[entry[0]] = base64.b64decode(entry[1].encode("ascii"))
        return out

    def export(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> tuple[tuple[int, bytes, bytes, bytes, bytes], ...]:
        """Fetch records *with* their searchable payload bytes.

        Used by the coordinator to migrate records between shards on a
        membership change: the returned ``(identifier, payload, content,
        tag, mtag)`` rows are exactly what an upload to another shard
        needs.  The tag fields are empty for records stored before the
        integrity subsystem existed.
        """
        fields = self._request(
            "fetch",
            {
                **protocol.fetch_fields(FetchRequest(identifiers=identifiers)),
                "payloads": True,
            },
            deadline_ms=deadline_ms,
        )
        return protocol.export_rows_from_fields(fields)

    def delete(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> int:
        """Delete records by identifier; returns how many were removed."""
        fields = self._request(
            "delete",
            protocol.delete_fields(DeleteRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        removed = fields.get("removed")
        if not isinstance(removed, int):
            raise WireFormatError("delete reply missing 'removed' count")
        return removed

    def health(self, deadline_ms: float | None = None) -> dict:
        """Liveness probe: status, record count, worker count."""
        return self._request("health", deadline_ms=deadline_ms)

    def stats(self, deadline_ms: float | None = None) -> dict:
        """The server's metrics snapshot (counters, latency histograms)."""
        return self._request("stats", deadline_ms=deadline_ms)

    def cluster(self, deadline_ms: float | None = None) -> dict:
        """The coordinator's topology report: replication factor plus
        per-partition replica liveness and resync debt.

        Only coordinators serve this verb; a plain shard answers with a
        typed ``PROTOCOL`` error.
        """
        fields = self._request("cluster", deadline_ms=deadline_ms)
        if not isinstance(fields.get("partitions"), list):
            raise WireFormatError("cluster reply missing 'partitions'")
        return fields
