"""repro — Circular Range Search on Encrypted Spatial Data (ICDCS 2015).

A from-scratch reproduction of Wang, Li, Wang and Li's two symmetric-key
Circular Range Searchable Encryption schemes (CRSE-I, CRSE-II), the Circle
Predicate Encryption stepping stone, and the SSW inner-product predicate
encryption they build on — over a pure-Python composite-order bilinear
pairing (the paper's supersingular curve ``y² = x³ + x``), plus the
simulated cloud deployment, plaintext/OPE baselines, Brightkite-style
workloads, executable SCPA security games, and the full benchmark suite
regenerating every table and figure of the paper's evaluation.

Quickstart::

    import random
    from repro import (DataSpace, Circle, CRSE2Scheme, group_for_crse2,
                       CloudDeployment)

    rng = random.Random(7)
    space = DataSpace(w=2, t=1024)
    scheme = CRSE2Scheme(space, group_for_crse2(space, backend="fast", rng=rng))
    cloud = CloudDeployment.create(scheme, rng=rng)
    cloud.outsource([(100, 200), (105, 205), (900, 900)])
    hits = cloud.query_points(Circle.from_radius((101, 201), 10))

Use ``backend="pairing"`` for the real elliptic-curve pairing backend.
"""

from repro.cloud import (
    PAPER_EC2_MODEL,
    Channel,
    CloudDeployment,
    CloudServer,
    CostModel,
    DataOwner,
    DataUser,
    LatencyModel,
    measure_calibration,
)
from repro.core import (
    CirclePredicateEncryption,
    Circle,
    CRSE1Scheme,
    CRSE2Scheme,
    CRSEScheme,
    DataSpace,
    EncryptedRecord,
    encrypt_dataset,
    gen_con_circle,
    group_for_crse1,
    group_for_crse2,
    linear_search,
    num_concentric_circles,
    point_in_circle,
    point_on_boundary,
    provision_group,
    Rectangle,
    gen_region_token,
    Simplex,
    SimplexRangeScheme,
)
from repro.crypto import ElementSizeModel, PAPER_ELEMENT_BYTES, RecordCipher
from repro.crypto.keystore import (
    load_crse1_key,
    load_crse2_key,
    save_crse1_key,
    save_crse2_key,
)
from repro.crypto.groups import (
    FastCompositeGroup,
    SupersingularPairingGroup,
    generate_params,
    params_for_bound,
)
from repro.errors import (
    CryptoError,
    ParameterError,
    ProtocolError,
    ReproError,
    SchemeError,
    SerializationError,
)

__version__ = "1.0.0"

__all__ = [
    "PAPER_EC2_MODEL",
    "PAPER_ELEMENT_BYTES",
    "Channel",
    "Circle",
    "CirclePredicateEncryption",
    "CloudDeployment",
    "CloudServer",
    "CostModel",
    "CryptoError",
    "CRSE1Scheme",
    "CRSE2Scheme",
    "CRSEScheme",
    "DataOwner",
    "DataSpace",
    "DataUser",
    "ElementSizeModel",
    "EncryptedRecord",
    "FastCompositeGroup",
    "LatencyModel",
    "ParameterError",
    "ProtocolError",
    "RecordCipher",
    "Rectangle",
    "ReproError",
    "SchemeError",
    "SerializationError",
    "Simplex",
    "SimplexRangeScheme",
    "SupersingularPairingGroup",
    "encrypt_dataset",
    "gen_con_circle",
    "gen_region_token",
    "generate_params",
    "group_for_crse1",
    "group_for_crse2",
    "linear_search",
    "load_crse1_key",
    "load_crse2_key",
    "measure_calibration",
    "num_concentric_circles",
    "params_for_bound",
    "point_in_circle",
    "point_on_boundary",
    "provision_group",
    "save_crse1_key",
    "save_crse2_key",
]
