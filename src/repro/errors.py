"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses are grouped by the layer
that raises them (parameters, crypto, scheme usage, cloud protocol).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParameterError(ReproError):
    """A parameter is outside its documented domain.

    Raised for malformed data spaces, out-of-range points or circles,
    unsupported dimensions, or cryptographic parameters that cannot satisfy
    the scheme's correctness bound.
    """


class CryptoError(ReproError):
    """A cryptographic-layer failure (group, pairing, or SSW level)."""


class SerializationError(ReproError):
    """A ciphertext, token, or message failed to (de)serialize."""


class SchemeError(ReproError):
    """Misuse of a CRSE scheme's API.

    Examples: searching with a token produced under a different key or a
    different scheme; querying CRSE-I with a radius other than the one fixed
    at key generation.
    """


class ProtocolError(ReproError):
    """A cloud-protocol message was malformed or arrived out of order."""


class WireFormatError(SerializationError, ProtocolError):
    """Bytes received over the wire do not decode into a valid message.

    Raised for truncated payloads, oversized frames, and junk bytes at the
    codec and framing layers.  Inherits from both
    :class:`SerializationError` (it *is* a failed deserialization) and
    :class:`ProtocolError` (it *is* a malformed protocol message), so either
    handler catches it.
    """


class ConnectionClosedError(WireFormatError):
    """The peer closed the connection cleanly at a frame boundary.

    Distinguished from mid-frame truncation (plain
    :class:`WireFormatError`) because it is the one transport failure a
    persistent-connection client may transparently recover from: a clean
    close before any reply byte means the request was either never
    processed or its reply was deliberately withheld — and the client
    knows which by whether the connection was fresh or reused.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the networked query service."""


class ServiceBusyError(ServiceError):
    """The server's bounded request queue is full (retryable backpressure)."""


class DeadlineExceededError(ServiceError):
    """A request exceeded its server-enforced deadline (typed timeout)."""


class ServiceConnectionError(ServiceError):
    """The client could not reach the server, even after retries."""


class ShardUnavailableError(ServiceError):
    """A backend shard failed mid-fan-out at the distributed coordinator.

    The coordinator answers with everything the *reachable* shards could
    attest to: ``partial_identifiers`` holds the merged matches from shards
    that did answer, and ``shards`` holds one report dict per shard
    (``addr``, ``ok``, plus per-shard detail) so the caller can see exactly
    which partition of the dataset the partial answer covers.
    """

    def __init__(
        self,
        message: str,
        partial_identifiers: tuple[int, ...] = (),
        shards: tuple[dict, ...] = (),
    ):
        """Wrap *message* with the partial evidence gathered before failure."""
        super().__init__(message)
        self.partial_identifiers = tuple(partial_identifiers)
        self.shards = tuple(shards)


class IntegrityError(ReproError):
    """A search result failed client-side verification.

    Raised by the result-integrity layer (:mod:`repro.integrity`) when a
    per-record authenticity tag does not verify, a shard's completeness
    proof does not balance against its accumulator root, the merged
    aggregate disagrees with the client's expected state, or a reply that
    should carry a proof arrives without one.  Each of these is evidence
    of a lazy, tampering, or truncating server — never a recoverable
    condition, so the error is terminal and must not be retried.
    """


class StorageError(ReproError):
    """Base class for errors raised by the durable record store.

    Raised for misuse (appending a duplicate identifier, opening a store
    created for a different scheme) and for operational failures that are
    not corruption (missing directory, manifest absent).
    """


class StorageCorruptionError(StorageError):
    """The on-disk log is damaged beyond automatic recovery.

    Raised for CRC mismatches on fully-present frames, segments the
    manifest names that do not exist, damage inside a *sealed* segment,
    and structurally impossible frame sequences.  A torn tail write in the
    **active** segment is *not* corruption — it is the expected crash
    artifact and is repaired by truncation on open.
    """


class StaticAnalysisError(ReproError):
    """The ``reprolint`` static analyzer could not complete a run.

    Raised for unreadable inputs, malformed baseline files, or unknown rule
    selections — *not* for lint findings, which are data, not errors.
    """
