"""Leakage-pattern analysis: what a curious server can mine from its log.

The paper's leakage function (Sec. IV) names four patterns — size, access,
search, and radius.  The simulated server records exactly these
observables; this module implements the *adversary's* side: procedures a
semi-honest server could actually run over its log to exploit each pattern.
They power tests that demonstrate the leakage is real (and that the
mitigations — dummy padding for the radius pattern — blunt it), turning the
Sec. IV prose into executable claims.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.concircles import num_concentric_circles
from repro.math.sumsquares import sums_of_two_squares_up_to

__all__ = [
    "PatternReport",
    "analyze_log",
    "infer_search_pattern",
    "infer_radius_candidates",
    "co_retrieval_groups",
]


@dataclass(frozen=True)
class PatternReport:
    """Everything the four leakage patterns yield on one server log."""

    record_count: int
    query_count: int
    repeated_query_groups: tuple[tuple[int, ...], ...]
    radius_candidates: tuple[tuple[int, ...], ...]
    co_retrieved: tuple[tuple[int, ...], ...]


def infer_search_pattern(
    access_patterns: Sequence[tuple[int, ...]],
) -> list[tuple[int, ...]]:
    """Group query indices with identical result sets.

    Tokens are randomized, so the server cannot match token bytes — but the
    *access pattern* betrays repeats: two queries returning exactly the
    same identifiers are (with high probability over non-trivial results)
    the same query.  Returns groups of query indices of size >= 2.
    """
    by_result: dict[tuple[int, ...], list[int]] = {}
    for index, identifiers in enumerate(access_patterns):
        by_result.setdefault(tuple(sorted(identifiers)), []).append(index)
    return [
        tuple(group) for group in by_result.values() if len(group) >= 2
    ]


def infer_radius_candidates(
    sub_token_counts: Sequence[int], max_radius: int = 200, w: int = 2
) -> list[tuple[int, ...]]:
    """Invert the radius pattern: which radii produce each sub-token count?

    For an unpadded CRSE-II token the sub-token count *is* ``m(R)``, and
    ``m`` is deterministic, so the server can enumerate the preimage.  For
    ``w = 2`` distinct radii give distinct ``m`` (m is strictly increasing
    in R), so the recovery is exact; a padded token's count ``K`` typically
    matches no ``m`` at all, yielding an empty candidate set — the paper's
    mitigation, visible in the output.
    """
    m_to_radii: dict[int, list[int]] = {}
    for radius in range(max_radius + 1):
        m = num_concentric_circles(radius * radius, w)
        m_to_radii.setdefault(m, []).append(radius)
    return [
        tuple(m_to_radii.get(count, ())) for count in sub_token_counts
    ]


def co_retrieval_groups(
    access_patterns: Sequence[tuple[int, ...]], min_support: int = 2
) -> list[tuple[int, ...]]:
    """Identifiers that always appear together across queries.

    A mild access-pattern inference: records co-retrieved in at least
    *min_support* queries are spatially close with growing confidence.
    Returns the identifier groups (size >= 2) sorted by support.
    """
    support: Counter[tuple[int, ...]] = Counter()
    for identifiers in access_patterns:
        key = tuple(sorted(identifiers))
        if len(key) >= 2:
            support[key] += 1
    frequent = [
        (count, group)
        for group, count in support.items()
        if count >= min_support
    ]
    frequent.sort(reverse=True)
    return [group for _, group in frequent]


def analyze_log(log) -> PatternReport:
    """Run every inference over a :class:`repro.cloud.server._ServerLog`."""
    return PatternReport(
        record_count=log.records_stored,
        query_count=log.queries_served,
        repeated_query_groups=tuple(infer_search_pattern(log.access_pattern)),
        radius_candidates=tuple(
            infer_radius_candidates(log.sub_token_counts)
        ),
        co_retrieved=tuple(co_retrieval_groups(log.access_pattern)),
    )


def _radius_count_is_injective(limit: int) -> bool:
    """Internal check used by tests: m(R) is strictly increasing at w=2."""
    counts = [
        len(sums_of_two_squares_up_to(r * r)) for r in range(limit + 1)
    ]
    return all(a < b for a, b in zip(counts, counts[1:]))
