"""Executable security definitions: leakage, SCPA games, concrete attacks."""

from repro.security.attacks import (
    CoBoundaryDataAdversary,
    CoBoundaryQueryAdversary,
    RandomGuessAdversary,
)
from repro.security.games import (
    DataPrivacyGame,
    DataPrivacyOracle,
    GameViolation,
    MatchObservation,
    QueryPrivacyGame,
    QueryPrivacyOracle,
)
from repro.security.patterns import (
    PatternReport,
    analyze_log,
    co_retrieval_groups,
    infer_radius_candidates,
    infer_search_pattern,
)
from repro.security.reduction import (
    CRSE1QueryAdversaryAsSSW,
    SSWOracle,
    SSWQueryPrivacyGame,
)
from repro.security.leakage import (
    Leakage,
    data_privacy_admissible,
    leakage,
    query_privacy_admissible,
    same_concentric_circle,
)

__all__ = [
    "CoBoundaryDataAdversary",
    "CoBoundaryQueryAdversary",
    "CRSE1QueryAdversaryAsSSW",
    "DataPrivacyGame",
    "DataPrivacyOracle",
    "GameViolation",
    "Leakage",
    "MatchObservation",
    "PatternReport",
    "QueryPrivacyGame",
    "QueryPrivacyOracle",
    "RandomGuessAdversary",
    "SSWOracle",
    "SSWQueryPrivacyGame",
    "analyze_log",
    "co_retrieval_groups",
    "data_privacy_admissible",
    "infer_radius_candidates",
    "infer_search_pattern",
    "leakage",
    "query_privacy_admissible",
    "same_concentric_circle",
]
