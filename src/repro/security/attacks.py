"""Concrete adversaries, including the paper's CRSE-II attack (Fig. 18/19).

Three adversaries for the executable games:

* :class:`RandomGuessAdversary` — the baseline; wins with probability 1/2
  against any scheme (used to sanity-check the harness).
* :class:`CoBoundaryDataAdversary` — the Appendix-C distinguishing attack
  against CRSE-II's data privacy.  Pick ``D0, D1`` inside the same query
  circle but on *different* concentric circles, and a helper ``D'`` sharing
  ``D0``'s concentric circle.  The challenge ciphertext matches the same
  sub-token as ``D'`` iff the bit is 0, so one token request plus two
  observations wins with probability 1 — **unless** the strengthened game
  rejects the helper request.
* :class:`CoBoundaryQueryAdversary` — the dual attack on query privacy:
  ``Q0, Q1`` share a center-distance structure that a co-boundary
  observation separates.

Against CRSE-I the co-boundary attack degrades to random guessing: a
CRSE-I token is indivisible, so both challenge ciphertexts produce the same
single Boolean observation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.geometry import Circle
from repro.security.games import (
    DataPrivacyOracle,
    GameViolation,
    QueryPrivacyOracle,
)

__all__ = [
    "RandomGuessAdversary",
    "CoBoundaryDataAdversary",
    "CoBoundaryQueryAdversary",
]


@dataclass
class RandomGuessAdversary:
    """Flips a coin; the control arm of every advantage estimate."""

    rng: random.Random
    d0: tuple[int, ...] = (0, 0)
    d1: tuple[int, ...] = (1, 0)
    q0: Circle = Circle((4, 4), 4)
    q1: Circle = Circle((5, 4), 4)

    def choose_challenge(self):
        """Return the configured challenge pair (records or circles)."""
        return (self.d0, self.d1)

    def attack(self, oracle, challenge) -> int:
        """Ignore everything and guess."""
        return self.rng.getrandbits(1)


@dataclass
class CoBoundaryDataAdversary:
    """The Fig. 18/19 attack on CRSE-II data privacy.

    Attributes:
        circle: A query circle containing all three points below.
        d0: Challenge record 0.
        d1: Challenge record 1, inside *circle* but at a different squared
            distance from its center than *d0*.
        helper: A record sharing *d0*'s squared center distance (the
            co-boundary witness ``D'_j``).
    """

    circle: Circle
    d0: tuple[int, ...]
    d1: tuple[int, ...]
    helper: tuple[int, ...]
    violated: bool = False

    def choose_challenge(self):
        """Init: submit ``(D0, D1)``."""
        return (self.d0, self.d1)

    def attack(self, oracle: DataPrivacyOracle, challenge) -> int:
        """Request a token and a helper ciphertext; compare sub-token hits.

        Sets :attr:`violated` (and falls back to guessing 0) if the
        strengthened game rejects a request — that rejection *is* the
        paper's fix working.
        """
        try:
            token = oracle.request_token(self.circle)
            helper_ct = oracle.request_ciphertext(self.helper)
        except GameViolation:
            self.violated = True
            return 0
        helper_obs = oracle.observe(token, helper_ct)
        challenge_obs = oracle.observe(token, challenge)
        if helper_obs.sub_token_index is None or challenge_obs.sub_token_index is None:
            # No sub-token structure to exploit (e.g. CRSE-I): coin flip.
            return 0
        same = helper_obs.sub_token_index == challenge_obs.sub_token_index
        return 0 if same else 1


@dataclass
class CoBoundaryQueryAdversary:
    """The dual attack on CRSE-II query privacy.

    Challenge circles ``Q0, Q1`` share a radius; the adversary picks a
    record whose squared distance to ``Q0``'s center differs from its
    squared distance to ``Q1``'s center (both inside, so the request is
    admissible in the *original* game), plus a helper record co-boundary
    with it under ``Q0`` only.  Matching sub-token indices then reveal the
    challenge bit.
    """

    q0: Circle
    q1: Circle
    probe: tuple[int, ...]
    helper: tuple[int, ...]
    violated: bool = False

    def choose_challenge(self):
        """Init: submit ``(Q0, Q1)``."""
        return (self.q0, self.q1)

    def attack(self, oracle: QueryPrivacyOracle, challenge_token) -> int:
        """Request probe/helper ciphertexts; compare sub-token hits."""
        try:
            probe_ct = oracle.request_ciphertext(self.probe)
            helper_ct = oracle.request_ciphertext(self.helper)
        except GameViolation:
            self.violated = True
            return 0
        probe_obs = oracle.observe(challenge_token, probe_ct)
        helper_obs = oracle.observe(challenge_token, helper_ct)
        if probe_obs.sub_token_index is None or helper_obs.sub_token_index is None:
            return 0
        # Under Q0 probe and helper are co-boundary (same sub-token); under
        # Q1 they are not.
        same = probe_obs.sub_token_index == helper_obs.sub_token_index
        return 0 if same else 1
