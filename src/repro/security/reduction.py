"""The Theorem-2 reduction, executable (paper Appendix A).

The paper proves CRSE-I query-secure by *simulation*: any adversary against
CRSE-I's SCPA query-privacy game can be turned into an adversary against
SSW's game with the same advantage — the reduction maps challenge circles
through ``f_v``, ciphertext requests through ``f_u``, and passes tokens
straight through.  This module implements both sides so the proof's
mechanics can be run and checked, not just read:

* :class:`SSWQueryPrivacyGame` — SSW's own selective game over vectors;
* :class:`CRSE1QueryAdversaryAsSSW` — the paper's simulator: wraps a
  CRSE-I query-privacy adversary into an SSW adversary;
* the test suite verifies the **advantage-preservation** property: an
  adversary's win rate in the CRSE-I game equals its wrapped win rate in
  the SSW game, coin flip for coin flip (same seeds, same transcript).

This does not (and cannot) *prove* SSW secure — that is the paper's cited
assumption — but it pins the reduction itself, which is the part the paper
actually contributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.concircles import gen_con_circle
from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle
from repro.crypto.ssw import (
    ssw_encrypt,
    ssw_gen_token,
    ssw_setup,
)
from repro.security.games import GameViolation
from repro.security.leakage import query_privacy_admissible

__all__ = [
    "SSWQueryPrivacyGame",
    "SSWOracle",
    "CRSE1QueryAdversaryAsSSW",
]


@dataclass
class SSWOracle:
    """Phase oracle of SSW's selective query-privacy game."""

    game: "SSWQueryPrivacyGame"

    def request_ciphertext(self, x: Sequence[int]):
        """Encrypt *x*, admissible only if it matches both challenge
        vectors identically (``x∘v0 = 0 ⇔ x∘v1 = 0``).

        Raises:
            GameViolation: On an inadmissible request.
        """
        game = self.game
        order = game.key.group.order
        ip0 = sum(a * b for a, b in zip(x, game.v0)) % order
        ip1 = sum(a * b for a, b in zip(x, game.v1)) % order
        if (ip0 == 0) != (ip1 == 0):
            raise GameViolation(
                "ciphertext request separates the challenge vectors"
            )
        return ssw_encrypt(game.key, list(x), game.rng)

    def request_token(self, v: Sequence[int]):
        """Token requests are unrestricted in SSW's query game."""
        return ssw_gen_token(self.game.key, list(v), self.game.rng)


class SSWAdversary(Protocol):
    """The adversary side of SSW's selective query-privacy game."""

    def choose_challenge(self) -> tuple[list[int], list[int]]:
        """Init: pick the two challenge vectors (equal length)."""

    def attack(self, oracle: SSWOracle, challenge_token) -> int:
        """Phases + guess."""


@dataclass
class SSWQueryPrivacyGame:
    """Challenger for SSW's selective query-privacy game."""

    group: object
    n: int
    rng: random.Random

    def run(self, adversary: SSWAdversary) -> bool:
        """Play one game; True iff the adversary guesses the bit.

        Raises:
            GameViolation: If the challenge vectors mismatch in length.
        """
        self.key = ssw_setup(self.group, self.n, self.rng)
        v0, v1 = adversary.choose_challenge()
        if len(v0) != self.n or len(v1) != self.n:
            raise GameViolation("challenge vectors must have length n")
        self.v0, self.v1 = list(v0), list(v1)
        oracle = SSWOracle(self)
        bit = self.rng.randrange(2)
        challenge = ssw_gen_token(
            self.key, self.v1 if bit else self.v0, self.rng
        )
        return adversary.attack(oracle, challenge) == bit


@dataclass
class CRSE1QueryAdversaryAsSSW:
    """The Appendix-A simulator: a CRSE-I adversary played against SSW.

    The wrapped adversary speaks circles and points; this shim translates
    its Init through ``f_v`` (with ``GenConCircle`` fixing the product
    form), its ciphertext requests through ``f_u``, and forwards tokens —
    exactly the proof's message flow.  The wrapped adversary's oracle
    restrictions are *checked in circle space* first, mirroring the proof's
    claim that admissibility transfers.
    """

    scheme: CRSE1Scheme
    inner: object  # a CRSE-I query-privacy adversary (duck-typed)

    def choose_challenge(self) -> tuple[list[int], list[int]]:
        """Translate the circle challenge into SSW vectors via f_v."""
        q0, q1 = self.inner.choose_challenge()
        if q0.r_squared != q1.r_squared != self.scheme.r_squared:
            raise GameViolation("challenge circles must use the fixed radius")
        self.q0, self.q1 = q0, q1
        split = self.scheme._split
        radii = list(
            gen_con_circle(self.scheme.r_squared, self.scheme.space.w)
        )
        return (
            split.f_v(q0.center, radii),
            split.f_v(q1.center, radii),
        )

    def attack(self, oracle: SSWOracle, challenge_token) -> int:
        """Run the inner adversary with translated oracles."""
        shim = _TranslatingOracle(self, oracle)
        from repro.core.crse1 import CRSE1Token

        return self.inner.attack(shim, CRSE1Token(ssw=challenge_token))


@dataclass
class _TranslatingOracle:
    """Presents a CRSE-I-shaped oracle on top of the SSW oracle."""

    outer: CRSE1QueryAdversaryAsSSW
    ssw_oracle: SSWOracle

    def request_ciphertext(self, point: Sequence[int]):
        """Translate a point request through ``f_u`` (checked in circle space)."""
        from repro.core.crse1 import CRSE1Ciphertext

        if not query_privacy_admissible(
            point, self.outer.q0, self.outer.q1
        ):
            raise GameViolation(
                "ciphertext request must leak identically under both "
                "challenge queries"
            )
        vector = self.outer.scheme._split.f_u(tuple(point))
        return CRSE1Ciphertext(ssw=self.ssw_oracle.request_ciphertext(vector))

    def request_token(self, circle: Circle):
        """Translate a circle token request through ``f_v``."""
        from repro.core.crse1 import CRSE1Token

        if circle.r_squared != self.outer.scheme.r_squared:
            raise GameViolation("CRSE-I tokens exist only at the fixed radius")
        split = self.outer.scheme._split
        radii = list(
            gen_con_circle(
                self.outer.scheme.r_squared, self.outer.scheme.space.w
            )
        )
        vector = split.f_v(circle.center, radii)
        return CRSE1Token(ssw=self.ssw_oracle.request_token(vector))

    def observe(self, token, ciphertext):
        """Boolean evaluation, as the server would do it."""
        from repro.security.games import observe_match

        return observe_match(self.outer.scheme, token, ciphertext)
