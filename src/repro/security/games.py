"""Executable SCPA security games (paper Def. 2 / Def. 3 and Appendix C).

These harnesses run the selective chosen-plaintext games as real protocols
against a live scheme instance: the challenger holds the key, the adversary
interacts only through the restricted oracles, and ``run`` returns whether
the adversary guessed the challenge bit.  Tests estimate adversarial
advantage empirically: honest adversaries hover at 1/2; the Appendix's
co-boundary adversary wins the *unrestricted* CRSE-II data-privacy game
outright, and the strengthened restrictions reject its requests — a running
demonstration of why the paper adds them.

The games are information-theoretic on what the adversary may *observe*:
for CRSE-II, the observation includes which sub-token of a requested token
matches a ciphertext (the semi-honest server sees exactly this while
executing ``Search``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.core.base import CRSEScheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, point_in_circle
from repro.crypto.ssw import ssw_query
from repro.errors import SchemeError
from repro.security.leakage import (
    data_privacy_admissible,
    query_privacy_admissible,
    same_concentric_circle,
)

__all__ = [
    "GameViolation",
    "MatchObservation",
    "DataPrivacyOracle",
    "DataPrivacyAdversary",
    "DataPrivacyGame",
    "QueryPrivacyOracle",
    "QueryPrivacyAdversary",
    "QueryPrivacyGame",
]


class GameViolation(SchemeError):
    """An oracle request violated the game's admissibility restrictions."""


def observe_match(scheme: CRSEScheme, token, ciphertext) -> "MatchObservation":
    """What the semi-honest server learns from one (token, ciphertext) pair.

    For CRSE-II this includes the index of the first matching sub-token
    within the (permuted) token — the extra signal behind the Fig. 18/19
    distinguishing attack.  For CRSE-I there is no finer structure than the
    Boolean result.
    """
    if isinstance(scheme, CRSE2Scheme):
        for index, sub in enumerate(token.sub_tokens):
            if ssw_query(sub, ciphertext.ssw):
                return MatchObservation(matched=True, sub_token_index=index)
        return MatchObservation(matched=False, sub_token_index=None)
    return MatchObservation(
        matched=scheme.matches(token, ciphertext), sub_token_index=None
    )


@dataclass(frozen=True)
class MatchObservation:
    """Server-visible outcome of evaluating one token on one ciphertext."""

    matched: bool
    sub_token_index: int | None


# ----------------------------------------------------------------------
# Data privacy (Def. 3)
# ----------------------------------------------------------------------
@dataclass
class DataPrivacyOracle:
    """Phase oracle for the data-privacy game."""

    game: "DataPrivacyGame"
    ciphertexts: list = field(default_factory=list)
    tokens: list = field(default_factory=list)

    def request_ciphertext(self, point: Sequence[int]):
        """Ciphertext request — unrestricted in Def. 3, but under the
        strengthened CRSE-II game the new record must not collide with any
        previously requested both-inside circle (Appendix C).

        Raises:
            GameViolation: If the request is inadmissible.
        """
        game = self.game
        if game.strengthened:
            for circle in game.requested_circles:
                if point_in_circle(game.d0, circle) and point_in_circle(
                    game.d1, circle
                ):
                    if point_in_circle(point, circle):
                        raise GameViolation(
                            "strengthened CRSE-II game: requested record may "
                            "not fall inside a both-inside challenge circle"
                        )
        game.requested_points.append(tuple(point))
        ciphertext = game.scheme.encrypt(game.key, point, game.rng)
        self.ciphertexts.append(ciphertext)
        return ciphertext

    def request_token(self, circle: Circle):
        """Token request, restricted by the leakage function.

        Raises:
            GameViolation: If the request is inadmissible.
        """
        game = self.game
        if not data_privacy_admissible(game.d0, game.d1, circle):
            raise GameViolation(
                "token request must leak identically on both challenge records"
            )
        if game.strengthened and point_in_circle(game.d0, circle):
            # Both challenge records are inside (admissibility guarantees
            # it); no previously requested record may also be inside.
            for prior in game.requested_points:
                if point_in_circle(prior, circle):
                    raise GameViolation(
                        "strengthened CRSE-II game: both-inside circle may "
                        "not contain a previously requested record"
                    )
        game.requested_circles.append(circle)
        token = game.scheme.gen_token(game.key, circle, game.rng)
        self.tokens.append(token)
        return token

    def observe(self, token, ciphertext) -> MatchObservation:
        """Evaluate as the server would (sub-token indices visible)."""
        return observe_match(self.game.scheme, token, ciphertext)


class DataPrivacyAdversary(Protocol):
    """The adversary side of the Def. 3 game."""

    def choose_challenge(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Init: pick the two challenge records ``(D0, D1)``."""

    def attack(self, oracle: DataPrivacyOracle, challenge) -> int:
        """Phases 1/2 plus Guess: interact and return the guessed bit."""


@dataclass
class DataPrivacyGame:
    """Challenger for the SCPA data-privacy game.

    Attributes:
        scheme: The scheme under attack.
        rng: Challenger randomness (key, challenge bit, encryption coins).
        strengthened: Apply the Appendix-C extra restrictions (required for
            CRSE-II's security claim to hold).
    """

    scheme: CRSEScheme
    rng: random.Random
    strengthened: bool = False

    def run(self, adversary: DataPrivacyAdversary) -> bool:
        """Play one game; returns True iff the adversary guesses the bit."""
        self.key = self.scheme.gen_key(self.rng)
        self.requested_points: list[tuple[int, ...]] = []
        self.requested_circles: list[Circle] = []
        d0, d1 = adversary.choose_challenge()
        self.d0, self.d1 = tuple(d0), tuple(d1)
        oracle = DataPrivacyOracle(self)
        bit = self.rng.randrange(2)
        challenge = self.scheme.encrypt(
            self.key, self.d1 if bit else self.d0, self.rng
        )
        guess = adversary.attack(oracle, challenge)
        return guess == bit


# ----------------------------------------------------------------------
# Query privacy (Def. 2)
# ----------------------------------------------------------------------
@dataclass
class QueryPrivacyOracle:
    """Phase oracle for the query-privacy game."""

    game: "QueryPrivacyGame"

    def request_ciphertext(self, point: Sequence[int]):
        """Ciphertext request, restricted by the leakage function.

        Raises:
            GameViolation: If the request is inadmissible.
        """
        game = self.game
        if not query_privacy_admissible(point, game.q0, game.q1):
            raise GameViolation(
                "ciphertext request must leak identically under both "
                "challenge queries"
            )
        if game.strengthened:
            # Appendix C: the new record must not share a concentric circle
            # with a previously requested record under either challenge.
            for prior in game.requested_points:
                for circle in (game.q0, game.q1):
                    if same_concentric_circle(prior, point, circle):
                        raise GameViolation(
                            "strengthened CRSE-II game: records sharing a "
                            "concentric circle with a prior request are "
                            "inadmissible"
                        )
        game.requested_points.append(tuple(point))
        return game.scheme.encrypt(game.key, point, game.rng)

    def request_token(self, circle: Circle):
        """Token request — unrestricted in Def. 2."""
        return self.game.scheme.gen_token(self.game.key, circle, self.game.rng)

    def observe(self, token, ciphertext) -> MatchObservation:
        """Evaluate as the server would (sub-token indices visible)."""
        return observe_match(self.game.scheme, token, ciphertext)


class QueryPrivacyAdversary(Protocol):
    """The adversary side of the Def. 2 game."""

    def choose_challenge(self) -> tuple[Circle, Circle]:
        """Init: pick two challenge circles with equal radius."""

    def attack(self, oracle: QueryPrivacyOracle, challenge_token) -> int:
        """Phases 1/2 plus Guess: interact and return the guessed bit."""


@dataclass
class QueryPrivacyGame:
    """Challenger for the SCPA query-privacy game."""

    scheme: CRSEScheme
    rng: random.Random
    strengthened: bool = False

    def run(self, adversary: QueryPrivacyAdversary) -> bool:
        """Play one game; returns True iff the adversary guesses the bit.

        Raises:
            GameViolation: If the challenge circles have unequal radii
                (Def. 2 requires a common radius — the radius pattern is
                conceded leakage).
        """
        self.key = self.scheme.gen_key(self.rng)
        self.requested_points: list[tuple[int, ...]] = []
        q0, q1 = adversary.choose_challenge()
        if q0.r_squared != q1.r_squared:
            raise GameViolation(
                "challenge queries must share one radius (radius pattern is "
                "conceded leakage)"
            )
        self.q0, self.q1 = q0, q1
        oracle = QueryPrivacyOracle(self)
        bit = self.rng.randrange(2)
        challenge_token = self.scheme.gen_token(
            self.key, self.q1 if bit else self.q0, self.rng
        )
        guess = adversary.attack(oracle, challenge_token)
        return guess == bit
