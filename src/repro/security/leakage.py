"""The leakage function ``L`` and the SCPA game restrictions (Sec. IV).

The paper's security games constrain the adversary's oracle requests by the
leakage function: a request is admissible only if it cannot *trivially*
separate the two challenge values.  Concretely:

* **query privacy** (Def. 2): a requested data record ``D_j`` must satisfy
  ``L(D_j, Q0) = L(D_j, Q1)`` and be inside both challenge circles or
  outside both;
* **data privacy** (Def. 3): a requested circle ``Q_j`` must satisfy
  ``L(D0, Q_j) = L(D1, Q_j)`` and contain both challenge records or
  neither.

For CRSE-II the Appendix strengthens the games: because a sub-token match
additionally reveals *which* concentric circle a record sits on, requests
must also avoid co-boundary collisions with the challenge values (the
Fig. 18/19 attack).  :func:`same_concentric_circle` is that predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import Circle, distance_squared, point_in_circle

__all__ = [
    "Leakage",
    "leakage",
    "same_concentric_circle",
    "query_privacy_admissible",
    "data_privacy_admissible",
]


@dataclass(frozen=True)
class Leakage:
    """``L(D, Q)``: what one (record, query) evaluation reveals.

    Attributes:
        inside: The Boolean search result (access pattern).
        r_squared: The query's squared radius (radius pattern).
    """

    inside: bool
    r_squared: int


def leakage(point: Sequence[int], circle: Circle) -> Leakage:
    """Evaluate the leakage function for one record and one query."""
    return Leakage(
        inside=point_in_circle(point, circle), r_squared=circle.r_squared
    )


def same_concentric_circle(
    a: Sequence[int], b: Sequence[int], circle: Circle
) -> bool:
    """True if *a* and *b* lie on the same covering concentric circle of
    *circle* — the extra relation CRSE-II leaks to the server."""
    return (
        point_in_circle(a, circle)
        and point_in_circle(b, circle)
        and distance_squared(a, circle.center)
        == distance_squared(b, circle.center)
    )


def query_privacy_admissible(
    point: Sequence[int], q0: Circle, q1: Circle
) -> bool:
    """Def. 2's Phase-1/2 restriction on ciphertext requests."""
    l0, l1 = leakage(point, q0), leakage(point, q1)
    return l0 == l1 and l0.inside == l1.inside


def data_privacy_admissible(
    d0: Sequence[int], d1: Sequence[int], circle: Circle
) -> bool:
    """Def. 3's Phase-1/2 restriction on token requests."""
    l0, l1 = leakage(d0, circle), leakage(d1, circle)
    return l0 == l1 and l0.inside == l1.inside
