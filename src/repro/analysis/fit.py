"""Tiny regression helpers for verifying the paper's growth claims.

The evaluation's qualitative claims — encryption flat in R, token/search
quadratic in R, everything linear in n — deserve more than eyeballing.
These closed-form least-squares fits let benchmarks and tests assert a
shape numerically: fit the sweep, check the exponent and the coefficient of
determination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError

__all__ = ["FitResult", "linear_fit", "power_fit"]


@dataclass(frozen=True)
class FitResult:
    """A fitted model ``y ≈ a·x + b`` (or ``y ≈ exp(b)·x^a`` for power fits).

    Attributes:
        slope: ``a``.
        intercept: ``b``.
        r_squared: Coefficient of determination in the fitted space.
    """

    slope: float
    intercept: float
    r_squared: float


def linear_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Ordinary least squares for ``y = a·x + b``.

    Raises:
        ParameterError: With fewer than two points or zero x-variance.
    """
    if len(x) != len(y) or len(x) < 2:
        raise ParameterError("need at least two (x, y) pairs")
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    sxx = sum((xi - mean_x) ** 2 for xi in x)
    if sxx == 0:
        raise ParameterError("x values must not all be equal")
    sxy = sum((xi - mean_x) * (yi - mean_y) for xi, yi in zip(x, y))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (yi - (slope * xi + intercept)) ** 2 for xi, yi in zip(x, y)
    )
    ss_tot = sum((yi - mean_y) ** 2 for yi in y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(slope=slope, intercept=intercept, r_squared=r_squared)


def power_fit(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y = c·x^a`` by regressing in log-log space.

    The returned ``slope`` is the exponent ``a`` (≈2 for the paper's
    R²-growth claims), ``intercept`` is ``ln c``.

    Raises:
        ParameterError: On non-positive inputs (log-log needs x, y > 0).
    """
    if any(v <= 0 for v in x) or any(v <= 0 for v in y):
        raise ParameterError("power fit needs strictly positive data")
    return linear_fit([math.log(v) for v in x], [math.log(v) for v in y])
