"""Formatting helpers for paper-style tables and figure series.

Every benchmark regenerates one table or figure from the paper's
evaluation.  These helpers render them uniformly: fixed-width text tables
(like Table I-III) and labelled numeric series (the data behind Figs.
9-16), so ``EXPERIMENTS.md`` and benchmark stdout stay consistent and easy
to diff against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TextTable", "Series", "format_series_block", "series_to_csv"]


@dataclass
class TextTable:
    """A fixed-width table with a title, header row, and numeric rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (arity-checked against the header)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def to_csv(self) -> str:
        """Render the table as CSV (header row first) for external plotting."""
        lines = [",".join(str(h) for h in self.headers)]
        lines.extend(
            ",".join(_format_cell(v) for v in row) for row in self.rows
        )
        return "\n".join(lines)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        cells = [[str(h) for h in self.headers]]
        cells.extend([_format_cell(v) for v in row] for row in self.rows)
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.headers))
        ]
        lines = [self.title]
        header = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Series:
    """One labelled (x, y) series — the data behind one figure curve."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one sample."""
        self.x.append(x)
        self.y.append(y)


def series_to_csv(series_list: Sequence[Series]) -> str:
    """CSV for one or more aligned series: ``x`` column plus one per series."""
    if not series_list:
        return ""
    header = ["x"] + [s.label for s in series_list]
    lines = [",".join(header)]
    for i, x in enumerate(series_list[0].x):
        row = [x] + [
            (s.y[i] if i < len(s.y) else float("nan")) for s in series_list
        ]
        lines.append(",".join(_format_cell(v) for v in row))
    return "\n".join(lines)


def format_series_block(title: str, series_list: Sequence[Series]) -> str:
    """Render figure data as aligned columns: x, then one column per series."""
    if not series_list:
        return title
    xs = series_list[0].x
    headers = ["x"] + [s.label for s in series_list]
    table = TextTable(title, headers)
    for i, x in enumerate(xs):
        row = [x] + [
            (s.y[i] if i < len(s.y) else float("nan")) for s in series_list
        ]
        table.add_row(*row)
    return table.render()
