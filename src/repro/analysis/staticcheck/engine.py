"""Core of ``reprolint``: file contexts, findings, and the rule registry.

The engine is deliberately small: it parses each Python file once into an
:mod:`ast` tree, wraps it in a :class:`FileContext` (source lines, inline
suppression comments, annotation tracking), and hands the context to every
registered :class:`Rule`.  Rules yield :class:`Finding` objects; the engine
filters inline-suppressed ones and sorts the rest.

Two suppression layers exist (see :mod:`repro.analysis.staticcheck.baseline`
for the second):

* ``# reprolint: ignore[CRS001]`` on the offending line (or on a comment
  line directly above it) silences named rules — ``ignore[*]`` silences all;
* a baseline file records accepted pre-existing findings by fingerprint so
  they never block, while *new* findings still do.

Fingerprints hash the rule id, the file's path relative to the lint root,
and the source snippet — not the line number — so unrelated edits that shift
lines do not invalidate a baseline.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import StaticAnalysisError

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "REGISTRY",
    "register",
    "active_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "PARSE_ERROR_RULE",
]

# Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_RULE = "CRS000"

_IGNORE_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint finding: a rule violated at a location.

    Attributes:
        rule: Rule identifier (``CRS001`` … ``CRS006``, or ``CRS000`` for
            unparseable files).
        path: File path relative to the lint root (POSIX separators).
        line: 1-based line number.
        col: 0-based column offset.
        message: Human-readable description of the violation.
        snippet: The stripped source line, used for display and for the
            baseline fingerprint.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + normalized snippet.

        Line numbers are excluded on purpose so that edits elsewhere in the
        file do not invalidate baseline entries, and the snippet is
        whitespace-normalized so re-indenting (wrapping the line in an
        ``if``, a formatter pass) does not resurrect a baselined finding.
        """
        normalized = " ".join(self.snippet.split())
        material = "\x1f".join((self.rule, self.path, normalized))
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``--format=json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def sort_key(self) -> tuple:
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """One-line human-readable rendering."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class FileContext:
    """Everything a rule needs to inspect one parsed Python file."""

    def __init__(self, path: Path, relpath: str, source: str):
        """Parse *source* and precompute suppression and annotation maps.

        Raises:
            SyntaxError: If *source* is not valid Python (callers turn this
                into a :data:`PARSE_ERROR_RULE` finding).
        """
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._ignores = self._collect_ignores(self.lines)
        self._annotation_nodes = self._collect_annotation_nodes(self.tree)

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_ignores(lines: list[str]) -> dict[int, frozenset[str]]:
        """Map line number -> rules silenced there by inline comments.

        A comment applies to its own line; a line that is *only* a comment
        also applies to the next line, so a suppression can sit above a long
        statement.
        """
        ignores: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _IGNORE_RE.search(text)
            if not match:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            ignores.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):
                ignores.setdefault(lineno + 1, set()).update(rules)
        return {line: frozenset(rules) for line, rules in ignores.items()}

    @staticmethod
    def _collect_annotation_nodes(tree: ast.AST) -> frozenset[int]:
        """Ids of AST nodes that live inside type annotations.

        Rules about *values* (e.g. CRS001) must not flag ``rng:
        random.Random`` parameter annotations, which are types, not uses.
        """
        roots: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg)),
                ):
                    if arg.annotation is not None:
                        roots.append(arg.annotation)
                if node.returns is not None:
                    roots.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                roots.append(node.annotation)
        ids = set()
        for root in roots:
            for sub in ast.walk(root):
                ids.add(id(sub))
        return frozenset(ids)

    # ------------------------------------------------------------------
    def in_annotation(self, node: ast.AST) -> bool:
        """True if *node* is part of a type annotation."""
        return id(node) in self._annotation_nodes

    def has_path_segment(self, *segments: str) -> bool:
        """True if the file's relative path contains any of *segments*.

        Path-based scoping: a rule about key-generation randomness applies
        to files under ``crypto/`` or ``core/`` regardless of where the lint
        root sits, including test fixtures that mirror the layout.
        """
        parts = set(Path(self.relpath).parts)
        stems = {Path(part).stem for part in parts}
        return any(seg in parts or seg in stems for seg in segments)

    def line_text(self, lineno: int) -> str:
        """The stripped source line at 1-based *lineno* ('' if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
        )

    def is_inline_suppressed(self, finding: Finding) -> bool:
        """True if an inline ``reprolint: ignore`` comment covers *finding*."""
        rules = self._ignores.get(finding.line)
        if not rules:
            return False
        return "*" in rules or finding.rule in rules


@dataclass
class Rule:
    """Base class for lint rules.  Subclasses set the class attributes below.

    Attributes:
        rule_id: Stable identifier (``CRSnnn``) used in output, inline
            suppressions, and baselines.
        title: Short name shown by ``--list-rules``.
        rationale: Why violating the rule endangers the scheme.
    """

    rule_id: str = field(default="", init=False)
    title: str = field(default="", init=False)
    rationale: str = field(default="", init=False)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file.  Subclasses must override."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers


#: All registered rules, keyed by rule id, in registration order.
REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and add a :class:`Rule` to the registry.

    Raises:
        StaticAnalysisError: On duplicate rule ids (a packaging bug).
    """
    instance = cls()
    if not instance.rule_id:
        raise StaticAnalysisError(f"rule {cls.__name__} has no rule_id")
    if instance.rule_id in REGISTRY:
        raise StaticAnalysisError(f"duplicate rule id {instance.rule_id}")
    REGISTRY[instance.rule_id] = instance
    return cls


def active_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Resolve a ``--select`` list (or None for all rules) to rule objects.

    Raises:
        StaticAnalysisError: For unknown rule ids.
    """
    if select is None:
        return list(REGISTRY.values())
    chosen = []
    for rule_id in select:
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        if rule_id not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise StaticAnalysisError(f"unknown rule {rule_id!r} (known: {known})")
        chosen.append(REGISTRY[rule_id])
    if not chosen:
        raise StaticAnalysisError("rule selection is empty")
    return chosen


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths* (files pass through directly).

    Hidden directories and ``__pycache__`` are skipped.

    Raises:
        StaticAnalysisError: For a path that does not exist.
    """
    seen: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise StaticAnalysisError(f"no such file or directory: {path}")
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts[1:]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def lint_file(path: Path, root: Path, rules: Sequence[Rule]) -> list[Finding]:
    """Lint one file; a syntax error yields a single CRS000 finding."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise StaticAnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        ctx = FileContext(path, relpath, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_inline_suppressed(finding):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files/directories and return all findings, sorted by location.

    Args:
        paths: Files or directories to lint.
        root: Directory findings' paths are reported relative to (defaults
            to the current working directory).
        select: Optional iterable of rule ids to run (default: all).

    Raises:
        StaticAnalysisError: For missing paths or unknown rule selections.
    """
    # Importing the rule pack registers the rules exactly once.
    from repro.analysis.staticcheck import rules as _rules  # noqa: F401

    root_path = Path(root) if root is not None else Path.cwd()
    rule_objects = active_rules(select)
    findings: list[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        findings.extend(lint_file(path, root_path, rule_objects))
    return sorted(findings, key=Finding.sort_key)
