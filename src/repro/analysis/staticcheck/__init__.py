"""``reprolint`` — crypto-aware static analysis for this codebase.

Two tiers:

* A per-file AST lint engine with a rule registry (CRS001-CRS007),
  inline ``# reprolint: ignore[RULE]`` suppressions, and a baseline file
  for accepted pre-existing findings.
* A project-wide (interprocedural) taint/concurrency tier
  (:mod:`repro.analysis.staticcheck.flow`, CRS008-CRS011) enabled with
  ``--flow``: it builds an import/call graph, computes per-function taint
  summaries, and checks that secrets only cross trust boundaries through
  approved sanitizers, plus async-hygiene rules for the service layer.

CLI: ``python -m repro.analysis.staticcheck`` or ``python -m repro lint``
(``--flow``, ``--strict``, ``--format sarif``).  See
:mod:`repro.analysis.staticcheck.rules` for the per-file rules,
:mod:`repro.analysis.staticcheck.flow.model` for the taint model, and
``docs/SECURITY.md`` for the user-facing rule table.
"""

from repro.analysis.staticcheck.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.engine import (
    REGISTRY,
    Finding,
    Rule,
    active_rules,
    lint_paths,
)
from repro.analysis.staticcheck.flow import FLOW_RULES, analyze_flow
from repro.analysis.staticcheck.rules import SECRET_WORDS
from repro.analysis.staticcheck.sarif import to_sarif

__all__ = [
    "BASELINE_FILENAME",
    "FLOW_RULES",
    "Finding",
    "REGISTRY",
    "Rule",
    "SECRET_WORDS",
    "active_rules",
    "analyze_flow",
    "lint_paths",
    "load_baseline",
    "partition_findings",
    "write_baseline",
    "to_sarif",
]
