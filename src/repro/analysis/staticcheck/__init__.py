"""``reprolint`` — crypto-aware static analysis for this codebase.

An AST-based lint engine with a rule registry (CRS001-CRS007), inline
``# reprolint: ignore[RULE]`` suppressions, a baseline file for accepted
pre-existing findings, and a CLI (``python -m repro.analysis.staticcheck``
or ``python -m repro lint``).  See :mod:`repro.analysis.staticcheck.rules`
for what each rule catches and why it matters for the scheme, and
``docs/SECURITY.md`` for the user-facing rule table.
"""

from repro.analysis.staticcheck.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.engine import (
    REGISTRY,
    Finding,
    Rule,
    active_rules,
    lint_paths,
)
from repro.analysis.staticcheck.rules import SECRET_WORDS

__all__ = [
    "BASELINE_FILENAME",
    "Finding",
    "REGISTRY",
    "Rule",
    "SECRET_WORDS",
    "active_rules",
    "lint_paths",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]
