"""Baseline files: accepted pre-existing findings that must not block.

A baseline is a JSON document listing finding fingerprints (rule + path +
snippet, see :meth:`Finding.fingerprint`).  Linting partitions findings into
*new* (absent from the baseline — these fail the run) and *suppressed*
(present — reported only in counts).  The shipped repository baseline is
``.reprolint-baseline.json`` at the repo root; regenerate it with
``python -m repro.analysis.staticcheck --write-baseline`` after deliberately
accepting a finding.

Entries carry the human-readable location and message alongside the
fingerprint so the file reviews like a suppression list, not a hash dump.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.staticcheck.engine import Finding
from repro.errors import StaticAnalysisError

__all__ = [
    "BASELINE_FILENAME",
    "load_baseline",
    "write_baseline",
    "partition_findings",
]

BASELINE_FILENAME = ".reprolint-baseline.json"

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def load_baseline(path: Path | None) -> frozenset[str]:
    """Return the set of baselined fingerprints (empty for a missing file).

    Version-1 files (whose fingerprints hashed the raw stripped snippet)
    are accepted transparently: each entry's fingerprint is recomputed
    from its stored ``rule``/``path``/``snippet`` fields under the
    current normalized scheme, so old baselines keep suppressing the same
    findings until rewritten with ``--write-baseline``.

    Raises:
        StaticAnalysisError: If the file exists but is malformed.
    """
    if path is None or not path.exists():
        return frozenset()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StaticAnalysisError(f"malformed baseline {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") not in _SUPPORTED_VERSIONS
    ):
        raise StaticAnalysisError(
            f"baseline {path} has unsupported format "
            f"(expected version in {_SUPPORTED_VERSIONS})"
        )
    version = payload["version"]
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise StaticAnalysisError(f"baseline {path} lacks a findings list")
    fingerprints = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise StaticAnalysisError(
                f"baseline {path} entry missing a fingerprint: {entry!r}"
            )
        if version < 2 and {"rule", "path", "snippet"} <= entry.keys():
            fingerprints.add(_migrated_fingerprint(entry))
        else:
            fingerprints.add(str(entry["fingerprint"]))
    return frozenset(fingerprints)


def _migrated_fingerprint(entry: dict) -> str:
    """Recompute a v1 entry's fingerprint under the current scheme."""
    return Finding(
        rule=str(entry["rule"]),
        path=str(entry["path"]),
        line=int(entry.get("line", 1)),
        col=0,
        message=str(entry.get("message", "")),
        snippet=str(entry["snippet"]),
    ).fingerprint


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write *findings* as the new baseline at *path* (sorted, reviewable).

    Raises:
        StaticAnalysisError: If the file cannot be written.
    """
    entries = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "message": f.message,
            "snippet": f.snippet,
            "fingerprint": f.fingerprint,
        }
        for f in sorted(findings, key=Finding.sort_key)
    ]
    payload = {"version": _FORMAT_VERSION, "findings": entries}
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    except OSError as exc:
        raise StaticAnalysisError(f"cannot write baseline {path}: {exc}") from exc


def partition_findings(
    findings: Sequence[Finding], baseline: frozenset[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, suppressed)`` against *baseline*."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        (suppressed if finding.fingerprint in baseline else new).append(finding)
    return new, suppressed
