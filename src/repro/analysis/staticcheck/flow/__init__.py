"""Project-wide (interprocedural) analysis tier for reprolint.

The per-file tier (``staticcheck.rules``, CRS001–CRS007) sees one AST at
a time.  This subpackage sees the whole package: :mod:`.project` builds
an import/call graph and light attribute-type index, :mod:`.model`
declares the taint model (sources / sinks / sanitizers and the blocking
primitives), and :mod:`.engine` runs taint summaries to fixpoint and
checks the async rules.  Entry point: :func:`analyze_flow`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.staticcheck.engine import Finding
from repro.analysis.staticcheck.flow.engine import FlowAnalyzer
from repro.analysis.staticcheck.flow.model import FLOW_RULES
from repro.analysis.staticcheck.flow.project import Project

__all__ = ["FLOW_RULES", "FlowAnalyzer", "Project", "analyze_flow"]


def analyze_flow(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the flow rules (CRS008–CRS011) over *paths*.

    Mirrors :func:`staticcheck.engine.lint_paths`: *root* anchors relative
    paths in findings, *select* restricts rule ids (non-flow ids are
    ignored).  Inline ``# reprolint: ignore[...]`` comments suppress flow
    findings exactly like per-file ones.
    """
    resolved_root = Path(root).resolve() if root is not None else Path.cwd()
    project = Project.load([Path(p) for p in paths], resolved_root)
    flow_select = (
        [r for r in select if r in FLOW_RULES] if select is not None else None
    )
    findings = FlowAnalyzer(project).run(select=flow_select)
    by_path = {m.ctx.relpath: m.ctx for m in project.modules.values()}
    kept = []
    for finding in findings:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.is_inline_suppressed(finding):
            continue
        kept.append(finding)
    return kept
