"""Interprocedural taint engine behind rules CRS008–CRS011.

The analysis runs in two tiers over a :class:`~.project.Project`:

**Taint tier (CRS008/CRS009).**  Every function gets a *summary* computed
to fixpoint over the call graph:

* which of its parameters flow to its return value,
* whether its return value is secret regardless of arguments (it calls a
  source), and
* which parameters reach a sink somewhere below it (directly or through
  further calls — the ``via`` chain in the finding message).

Real taint enters at declared sources (key-generation calls, parameters
whose annotation or scoped name marks them secret — see ``flow.model``)
and propagates through assignments, containers, f-strings, attribute
loads, and calls.  Attribute stores (``self._sk = key``) taint the
attribute *class-wide*, which is what carries secrets between methods.
A **sanitizer** call (encrypt/tokenize/codec/hash/len) stops the flow.
When taint reaches a sink — a logging call or exception message for
CRS008, a wire frame, persistence write, or metrics observation for
CRS009 — a finding is emitted at the sink, naming the source and the
call chain.

**Concurrency tier (CRS010/CRS011).**  Scope-aware but not taint-based:
CRS010 computes a transitive *blocks-the-thread* predicate over the same
call graph (fsync/socket/pairing primitives at the leaves) and flags
direct calls to blocking functions inside ``async def`` bodies — passing
the function *reference* to ``run_in_executor``/``to_thread`` is the
approved pattern and is structurally exempt.  CRS011 checks that
coordinator-style fan-out handlers (``async def _do_*`` on a class with
``_fan_out``) forward a ``deadline_ms`` budget on every backend client
call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.staticcheck.engine import Finding
from repro.analysis.staticcheck.flow import model
from repro.analysis.staticcheck.flow.project import (
    ClassInfo,
    FunctionInfo,
    Project,
)

__all__ = ["FlowAnalyzer", "PUBLIC_ATTRS"]

#: Attribute loads that project only public structure off a secret value
#: (dimensions, sizes, group parameters) — reading them is the
#: recommended redaction, so they clear taint.
PUBLIC_ATTRS = frozenset(
    {"w", "t", "n", "dims", "num_sub_tokens", "group", "space", "shape"}
)

_MAX_PASSES = 8
_MAX_VIA = 4

_Label = object  # int (conditional on param i) | str (real secret)


@dataclass(frozen=True)
class SinkHit:
    """One sink location a tainted value can reach."""

    rule: str
    kind: str
    path: str
    line: int
    col: int
    snippet: str
    via: tuple[str, ...] = ()


@dataclass(frozen=True)
class Summary:
    """Fixpoint facts about one function."""

    returns: frozenset = frozenset()
    sinks: tuple = ()  # tuple[(param_index, frozenset[SinkHit])]

    def sink_map(self) -> dict[int, frozenset]:
        return dict(self.sinks)


def _label_is_real(label) -> bool:
    return isinstance(label, str)


def _describe(labels: Iterable[str]) -> str:
    names = sorted(str(label) for label in labels)
    return names[0] if names else "secret value"


class FlowAnalyzer:
    """Runs the taint and concurrency tiers over one project."""

    def __init__(self, project: Project):
        self.project = project
        self.summaries: dict[str, Summary] = {
            q: Summary() for q in project.functions
        }
        #: class qualname -> attr -> frozenset of real labels.
        self.attr_taint: dict[str, dict[str, frozenset]] = {}
        self._findings: dict[tuple, Finding] = {}

    # ------------------------------------------------------------------
    def run(self, select: Iterable[str] | None = None) -> list[Finding]:
        """All flow findings, optionally restricted to *select* rule ids."""
        wanted = set(select) if select is not None else set(model.FLOW_RULES)
        if wanted & {"CRS008", "CRS009"}:
            self._taint_fixpoint()
            if "CRS008" in wanted:
                self._check_secret_dataclass_reprs()
        if "CRS010" in wanted:
            self._check_blocking_in_async()
        if "CRS011" in wanted:
            self._check_deadline_propagation()
        findings = [
            f for f in self._findings.values() if f.rule in wanted
        ]
        return sorted(findings, key=Finding.sort_key)

    # ------------------------------------------------------------------
    # Taint tier
    # ------------------------------------------------------------------
    def _taint_fixpoint(self) -> None:
        for _ in range(_MAX_PASSES):
            self._findings = {
                k: f
                for k, f in self._findings.items()
                if f.rule not in ("CRS008", "CRS009")
            }
            changed = False
            for info in self.project.functions.values():
                analyzer = _BodyAnalyzer(self, info)
                summary = analyzer.analyze()
                if summary != self.summaries[info.qualname]:
                    self.summaries[info.qualname] = summary
                    changed = True
                changed = analyzer.attr_changed or changed
            if not changed:
                break

    def record_attr_taint(self, klass: ClassInfo, attr: str, labels) -> bool:
        """Taint *attr* class-wide; return True if the set grew."""
        real = frozenset(l for l in labels if _label_is_real(l))
        if not real:
            return False
        per_class = self.attr_taint.setdefault(klass.qualname, {})
        merged = per_class.get(attr, frozenset()) | real
        if merged != per_class.get(attr, frozenset()):
            per_class[attr] = merged
            return True
        return False

    def attr_taint_of(self, klass: ClassInfo, attr: str) -> frozenset:
        """Labels stored on *attr*, unioned over the class's base chain."""
        labels: frozenset = frozenset()
        cursor: ClassInfo | None = klass
        seen: set[str] = set()
        while cursor is not None and cursor.qualname not in seen:
            seen.add(cursor.qualname)
            labels |= self.attr_taint.get(cursor.qualname, {}).get(
                attr, frozenset()
            )
            cursor = next(
                (
                    self.project.classes[b]
                    for b in cursor.bases
                    if b in self.project.classes
                ),
                None,
            )
        return labels

    def emit(self, hit: SinkHit, labels: Iterable[str]) -> None:
        """Report real taint reaching *hit* (deduplicated per location)."""
        key = (hit.rule, hit.path, hit.line, hit.col)
        source = _describe(labels)
        chain = " → ".join(hit.via)
        message = f"{source} reaches {hit.kind}"
        if chain:
            message += f" (via {chain})"
        message += "; redact to structure (type/length/id) or use an approved codec"
        existing = self._findings.get(key)
        if existing is None or message < existing.message:
            self._findings[key] = Finding(
                rule=hit.rule,
                path=hit.path,
                line=hit.line,
                col=hit.col,
                message=message,
                snippet=hit.snippet,
            )

    # ------------------------------------------------------------------
    # CRS008 sub-check: secret dataclasses with auto-generated repr
    # ------------------------------------------------------------------
    def _check_secret_dataclass_reprs(self) -> None:
        for klass in self.project.classes.values():
            if not any(
                klass.name.endswith(suffix)
                for suffix in model.SECRET_TYPE_SUFFIXES
            ):
                continue
            if "__repr__" in klass.methods:
                continue
            decorator = self._dataclass_decorator(klass)
            if decorator is None:
                continue
            if isinstance(decorator, ast.Call) and any(
                kw.arg == "repr"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in decorator.keywords
            ):
                continue
            ctx = klass.module.ctx
            finding = ctx.finding(
                "CRS008",
                klass.node,
                f"secret key class `{klass.name}` keeps the dataclass "
                "auto-generated repr, which prints every secret field; "
                "set repr=False and provide a redacted __repr__",
            )
            self._findings[
                ("CRS008", finding.path, finding.line, finding.col)
            ] = finding

    def _dataclass_decorator(self, klass: ClassInfo):
        for decorator in klass.node.decorator_list:
            target = (
                decorator.func
                if isinstance(decorator, ast.Call)
                else decorator
            )
            resolved = self.project.resolve_dotted(klass.module, target) or ""
            if resolved == "dataclass" or resolved.endswith(".dataclass"):
                return decorator
        return None

    # ------------------------------------------------------------------
    # CRS010 — blocking calls on the event loop
    # ------------------------------------------------------------------
    def _call_is_blocking_primitive(self, resolved, attr) -> str | None:
        if resolved in model.BLOCKING_QUALNAMES:
            return resolved
        if resolved:
            for suffix in model.BLOCKING_SUFFIXES:
                if resolved == suffix or resolved.endswith("." + suffix):
                    return resolved
        if attr and attr in model.BLOCKING_ATTRS:
            return attr
        return None

    def _blocking_closure(self) -> dict[str, bool]:
        primitive: dict[str, bool] = {}
        edges: dict[str, set[str]] = {}
        for info in self.project.functions.values():
            blocked = False
            callees: set[str] = set()
            for call in self._direct_calls(info.node):
                resolved, callee = self.project.resolve_call(info, call)
                attr = (
                    call.func.attr
                    if isinstance(call.func, ast.Attribute)
                    else None
                )
                if self._call_is_blocking_primitive(resolved, attr):
                    blocked = True
                if callee is not None and not callee.is_async:
                    callees.add(callee.qualname)
            primitive[info.qualname] = blocked
            edges[info.qualname] = callees
        blocking = dict(primitive)
        changed = True
        while changed:
            changed = False
            for qual, callees in edges.items():
                if not blocking[qual] and any(
                    blocking.get(c, False) for c in callees
                ):
                    blocking[qual] = True
                    changed = True
        return blocking

    @staticmethod
    def _direct_calls(func_node) -> list[ast.Call]:
        """Call nodes in *func_node*'s own body, not in nested functions."""
        calls: list[ast.Call] = []
        stack: list[ast.AST] = list(ast.iter_child_nodes(func_node))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return calls

    def _check_blocking_in_async(self) -> None:
        blocking = self._blocking_closure()
        for module in self.project.modules.values():
            enclosing_class: dict[int, ClassInfo] = {}
            for klass in self.project.classes.values():
                if klass.module is not module:
                    continue
                for item in klass.node.body:
                    enclosing_class[id(item)] = klass
            for node in ast.walk(module.ctx.tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                info = self.project.functions.get(
                    self._async_qualname(module, node, enclosing_class)
                ) or FunctionInfo(
                    f"{module.name}.{node.name}",
                    node,
                    module,
                    klass=enclosing_class.get(id(node)),
                )
                for call in self._direct_calls(node):
                    resolved, callee = self.project.resolve_call(info, call)
                    if callee is not None and callee.is_async:
                        continue
                    attr = (
                        call.func.attr
                        if isinstance(call.func, ast.Attribute)
                        else None
                    )
                    culprit = self._call_is_blocking_primitive(resolved, attr)
                    if culprit is None and not (
                        callee is not None
                        and blocking.get(callee.qualname, False)
                    ):
                        continue
                    name = culprit or (callee.qualname if callee else "call")
                    ctx = module.ctx
                    finding = ctx.finding(
                        "CRS010",
                        call,
                        f"blocking call `{name}` inside `async def "
                        f"{node.name}` stalls the event loop; run it via "
                        "loop.run_in_executor or asyncio.to_thread",
                    )
                    self._findings[
                        ("CRS010", finding.path, finding.line, finding.col)
                    ] = finding

    @staticmethod
    def _async_qualname(module, node, enclosing_class) -> str:
        klass = enclosing_class.get(id(node))
        if klass is not None:
            return f"{klass.qualname}.{node.name}"
        return f"{module.name}.{node.name}"

    # ------------------------------------------------------------------
    # CRS011 — deadline propagation at fan-out sites
    # ------------------------------------------------------------------
    def _check_deadline_propagation(self) -> None:
        for klass in self.project.classes.values():
            if self.project.lookup_method(klass, "_fan_out") is None:
                continue
            for name, method in klass.methods.items():
                if not name.startswith("_do_") or not method.is_async:
                    continue
                for call in [
                    n
                    for n in ast.walk(method.node)
                    if isinstance(n, ast.Call)
                ]:
                    func = call.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and func.attr in model.CLIENT_VERBS
                    ):
                        continue
                    receiver = ast.unparse(func.value)
                    if "client" not in receiver.lower():
                        continue
                    if any(kw.arg == "deadline_ms" for kw in call.keywords):
                        continue
                    ctx = klass.module.ctx
                    finding = ctx.finding(
                        "CRS011",
                        call,
                        f"fan-out call `{receiver}.{func.attr}` in "
                        f"`{klass.name}.{name}` does not forward the "
                        "remaining deadline budget; pass "
                        "deadline_ms=self._remaining_ms(...)",
                    )
                    self._findings[
                        ("CRS011", finding.path, finding.line, finding.col)
                    ] = finding


class _BodyAnalyzer:
    """Abstract interpretation of one function body for taint."""

    def __init__(self, flow: FlowAnalyzer, info: FunctionInfo):
        self.flow = flow
        self.project = flow.project
        self.info = info
        self.ctx = info.module.ctx
        self.taint: dict[str, frozenset] = {}
        self.local_types: dict[str, str] = {}
        self.returns: set = set()
        self.cond_sinks: dict[int, set] = {}
        self.attr_changed = False
        self._scoped_names = info.module.ctx.has_path_segment(
            *model.SECRET_PARAM_PATH_SEGMENTS
        )

    # ------------------------------------------------------------------
    def analyze(self) -> Summary:
        self._seed_params()
        previous: dict[str, frozenset] | None = None
        for _ in range(3):
            self._walk(self.info.node.body)
            if self.taint == previous:
                break
            previous = dict(self.taint)
        return Summary(
            returns=frozenset(self.returns),
            sinks=tuple(
                sorted(
                    (
                        (index, frozenset(hits))
                        for index, hits in self.cond_sinks.items()
                    ),
                    key=lambda item: item[0],
                )
            ),
        )

    def _seed_params(self) -> None:
        klass = self.info.klass
        for index, arg in enumerate(self.info.params):
            label = self._param_source_label(arg, index, klass)
            self.taint[arg.arg] = frozenset(
                {label if label is not None else index}
            )

    def _param_source_label(self, arg, index, klass) -> str | None:
        annotation = None
        if arg.annotation is not None:
            annotation = self._annotation_name(arg.annotation)
        if model.is_secret_type(annotation):
            return (
                f"secret-typed parameter `{arg.arg}` "
                f"of {self.info.qualname}"
            )
        if index == 0 and arg.arg in ("self", "cls") and klass is not None:
            if any(
                klass.name.endswith(suffix)
                for suffix in model.SECRET_TYPE_SUFFIXES
            ):
                return f"secret key instance `{klass.name}`"
            return None
        if self._scoped_names and arg.arg in model.SECRET_PARAM_NAMES:
            return (
                f"secret parameter `{arg.arg}` of {self.info.qualname}"
            )
        return None

    def _annotation_name(self, node) -> str | None:
        if isinstance(node, ast.BinOp):
            return self._annotation_name(node.left) or self._annotation_name(
                node.right
            )
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return self.project.resolve_dotted(self.info.module, node)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _walk(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, node) -> None:
        if isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None and isinstance(node.target, ast.Name):
                self._bind(node.target, self._eval(node.value), node.value)
            elif node.value is not None:
                self._bind_target(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            labels = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                labels |= self.taint.get(node.target.id, frozenset())
            self._bind_target(node.target, labels)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.returns |= self._eval(node.value)
        elif isinstance(node, ast.Raise):
            self._raise(node)
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self._eval(node.test)
            self._walk(node.body)
            self._walk(node.orelse)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            labels = self._eval(node.iter)
            self._bind_target(node.target, labels)
            self._walk(node.body)
            self._walk(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, labels)
            self._walk(node.body)
        elif isinstance(node, ast.Try):
            self._walk(node.body)
            for handler in node.handlers:
                # Caught exception objects are not tainted: only direct
                # interpolation of secret *values* counts (see SECURITY.md).
                if handler.name:
                    self.taint[handler.name] = frozenset()
                self._walk(handler.body)
            self._walk(node.orelse)
            self._walk(node.finalbody)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analyze its body with the closure taint so
            # flows through local helpers (offloaded closures) are seen.
            self._walk(node.body)
        elif isinstance(node, ast.ClassDef):
            self._walk(node.body)
        else:
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)

    def _assign(self, node: ast.Assign) -> None:
        # Tuple-unpacking a masked source: only secret slots taint.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Call)
        ):
            resolved, _ = self.project.resolve_call(
                self.info, node.value, self.local_types
            )
            source = model.is_source_call(resolved)
            if source is not None and source[1] is not None:
                desc, mask = source
                for element, secret in zip(node.targets[0].elts, mask):
                    labels = frozenset({desc}) if secret else frozenset()
                    self._bind_target(element, labels)
                for arg in node.value.args:
                    self._eval(arg)
                return
        labels = self._eval(node.value)
        for target in node.targets:
            self._bind(target, labels, node.value)

    def _bind(self, target, labels, value) -> None:
        self._bind_target(target, labels)
        if isinstance(target, ast.Name):
            inferred = self._instance_class(value)
            if inferred is not None:
                self.local_types[target.id] = inferred

    def _instance_class(self, value) -> str | None:
        if isinstance(value, ast.Call):
            resolved, _ = self.project.resolve_call(
                self.info, value, self.local_types
            )
            if resolved in self.project.classes:
                return resolved
            if resolved and "." in resolved:
                owner = resolved.rsplit(".", 1)[0]
                if owner in self.project.classes:
                    return owner
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.info.klass is not None
        ):
            owner = self.project.attr_type_of(self.info.klass, value.attr)
            if owner is not None:
                return owner.qualname
        return None

    def _bind_target(self, target, labels) -> None:
        if isinstance(target, ast.Name):
            self.taint[target.id] = frozenset(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, labels)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, labels)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.info.klass is not None
        ):
            if self.flow.record_attr_taint(
                self.info.klass, target.attr, labels
            ):
                self.attr_changed = True

    def _raise(self, node: ast.Raise) -> None:
        if not isinstance(node.exc, ast.Call):
            return
        hit = SinkHit(
            rule="CRS008",
            kind="an exception message",
            path=self.ctx.relpath,
            line=node.exc.lineno,
            col=node.exc.col_offset,
            snippet=self.ctx.line_text(node.exc.lineno),
        )
        for arg in [*node.exc.args, *(kw.value for kw in node.exc.keywords)]:
            self._sink(hit, self._eval(arg))
        for arg in node.exc.args:
            self._eval(arg)

    def _sink(self, hit: SinkHit, labels) -> None:
        real = {l for l in labels if _label_is_real(l)}
        if real:
            self.flow.emit(hit, real)
        for label in labels:
            if isinstance(label, int):
                self.cond_sinks.setdefault(label, set()).add(hit)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _eval(self, node) -> frozenset:
        if node is None or isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            return self.taint.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            labels = self._eval(node.value) if node.value else frozenset()
            self.returns |= labels
            return labels
        if isinstance(node, ast.JoinedStr):
            labels: frozenset = frozenset()
            for part in node.values:
                labels |= self._eval(part)
            return labels
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            labels = frozenset()
            for value in node.values:
                labels |= self._eval(value)
            return labels
        if isinstance(node, ast.Compare):
            labels = self._eval(node.left)
            for comparator in node.comparators:
                labels |= self._eval(comparator)
            return labels
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            labels = frozenset()
            for element in node.elts:
                labels |= self._eval(element)
            return labels
        if isinstance(node, ast.Dict):
            labels = frozenset()
            for key in node.keys:
                if key is not None:
                    labels |= self._eval(key)
            for value in node.values:
                labels |= self._eval(value)
            return labels
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return frozenset()
        if isinstance(node, ast.NamedExpr):
            labels = self._eval(node.value)
            self._bind_target(node.target, labels)
            return labels
        labels = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self._eval(child)
        return labels

    def _eval_attribute(self, node: ast.Attribute) -> frozenset:
        base = self._eval(node.value)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.info.klass is not None
        ):
            base |= self.flow.attr_taint_of(self.info.klass, node.attr)
        if node.attr in PUBLIC_ATTRS:
            return frozenset()
        return base

    def _eval_comprehension(self, node) -> frozenset:
        saved = dict(self.taint)
        for generator in node.generators:
            labels = self._eval(generator.iter)
            self._bind_target(generator.target, labels)
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            labels = self._eval(node.key) | self._eval(node.value)
        else:
            labels = self._eval(node.elt)
        self.taint = saved
        return labels

    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> frozenset:
        resolved, callee = self.project.resolve_call(
            self.info, node, self.local_types
        )
        attr = (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        arg_labels = [self._eval(arg) for arg in node.args]
        kw_labels = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }
        receiver_labels = (
            self._eval(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else frozenset()
        )
        all_labels: frozenset = receiver_labels
        for labels in arg_labels:
            all_labels |= labels
        for labels in kw_labels.values():
            all_labels |= labels

        if model.is_sanitizer(resolved, attr):
            return frozenset()

        sink = self._sink_for_call(node, resolved, attr)
        if sink is not None:
            for labels in [*arg_labels, *kw_labels.values()]:
                self._sink(sink, labels)
            return frozenset()

        source = model.is_source_call(resolved)
        if source is not None:
            desc, _mask = source
            return frozenset({desc})

        if callee is not None:
            return self._apply_summary(node, callee, arg_labels, kw_labels)
        return all_labels

    def _sink_for_call(self, node, resolved, attr) -> SinkHit | None:
        make = lambda rule, kind: SinkHit(  # noqa: E731 - local factory
            rule=rule,
            kind=kind,
            path=self.ctx.relpath,
            line=node.lineno,
            col=node.col_offset,
            snippet=self.ctx.line_text(node.lineno),
        )
        receiver_text = ""
        if isinstance(node.func, ast.Attribute):
            try:
                receiver_text = ast.unparse(node.func.value)
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                receiver_text = ""
        if (resolved or "").startswith("logging.") and attr in model.LOG_METHODS:
            return make("CRS008", "a log record")
        if attr in model.LOG_METHODS and model.LOG_RECEIVER_RE.search(
            receiver_text
        ):
            return make("CRS008", "a log record")
        if resolved in ("warnings.warn", "warn"):
            return make("CRS008", "a warning message")
        if resolved and any(
            resolved == s or resolved.endswith("." + s)
            for s in model.WIRE_SINK_SUFFIXES
        ):
            return make("CRS009", "a wire frame")
        if attr in model.WIRE_SINK_ATTRS:
            return make("CRS009", "a socket/file write")
        if attr in model.METRIC_SINK_ATTRS and "metric" in receiver_text.lower():
            return make("CRS009", "a metrics observation")
        return None

    def _apply_summary(
        self, node, callee: FunctionInfo, arg_labels, kw_labels
    ) -> frozenset:
        summary = self.flow.summaries.get(callee.qualname, Summary())
        bound = self._is_bound_call(node, callee)
        offset = 1 if bound else 0
        per_param: dict[int, frozenset] = {}
        if bound and isinstance(node.func, ast.Attribute):
            per_param[0] = self._eval(node.func.value)
        for position, labels in enumerate(arg_labels):
            per_param[position + offset] = labels
        for name, labels in kw_labels.items():
            if name in callee.param_names:
                per_param[callee.param_names.index(name)] = labels

        # Conditional sinks in the callee fire (or propagate) per arg.
        for index, hits in summary.sink_map().items():
            labels = per_param.get(index, frozenset())
            if not labels:
                continue
            for hit in hits:
                if len(hit.via) >= _MAX_VIA:
                    continue
                extended = SinkHit(
                    rule=hit.rule,
                    kind=hit.kind,
                    path=hit.path,
                    line=hit.line,
                    col=hit.col,
                    snippet=hit.snippet,
                    via=(self.info.qualname, *hit.via)
                    if self.info.qualname not in hit.via
                    else hit.via,
                )
                self._sink(extended, labels)

        result: frozenset = frozenset()
        for label in summary.returns:
            if _label_is_real(label):
                result |= frozenset({label})
            elif isinstance(label, int):
                result |= per_param.get(label, frozenset())
        return result

    def _is_bound_call(self, node, callee: FunctionInfo) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return False
        if callee.klass is None or not callee.param_names:
            return False
        if callee.param_names[0] not in ("self", "cls"):
            return False
        base_resolved = self.project.resolve_dotted(
            self.info.module, node.func.value
        )
        if base_resolved in self.project.classes:
            return False
        return True
