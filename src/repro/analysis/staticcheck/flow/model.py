"""The taint model: what is secret, where it may not go, what cleans it.

The flow analyzer (:mod:`repro.analysis.staticcheck.flow.engine`) is
generic; this module is the part that knows the codebase.  Three kinds of
facts are declared here:

* **Sources** introduce taint: values that the paper's threat model says
  must never leave the data owner in the clear — SSW/CRSE master keys,
  Paillier secret keys, plaintext coordinates and radii, the per-query
  permutation secret β.
* **Sinks** are where tainted values become observable to the server, the
  network, or an operator reading logs: logging calls, exception messages,
  wire encoding, persistence writes, metrics labels.
* **Sanitizers** are the approved ways secret values cross a boundary:
  encryption/tokenization, the explicit codecs, hashing, and
  structure-only projections (lengths, types, bit sizes).

Matching is deliberately name-based (resolved dotted names where the
project index can resolve them, terminal attribute names otherwise): the
analyzer runs on a codebase with no type checker in the loop, so specs
must degrade gracefully on dynamic receivers.
"""

from __future__ import annotations

import re

__all__ = [
    "FLOW_RULES",
    "SECRET_TYPE_SUFFIXES",
    "SECRET_PARAM_NAMES",
    "SECRET_PARAM_PATH_SEGMENTS",
    "SOURCE_CALLS",
    "SOURCE_CALL_MASKS",
    "SANITIZER_SUFFIXES",
    "SANITIZER_ATTRS",
    "CLEAN_BUILTINS",
    "LOG_RECEIVER_RE",
    "LOG_METHODS",
    "WIRE_SINK_SUFFIXES",
    "WIRE_SINK_ATTRS",
    "METRIC_SINK_ATTRS",
    "BLOCKING_QUALNAMES",
    "BLOCKING_ATTRS",
    "BLOCKING_SUFFIXES",
    "EXECUTOR_SUFFIXES",
    "CLIENT_VERBS",
    "is_secret_type",
    "is_source_call",
    "is_sanitizer",
]

#: Rule ids implemented by the flow analyzer (project-wide tier).
FLOW_RULES = ("CRS008", "CRS009", "CRS010", "CRS011")

#: Title and rationale per flow rule (mirrors ``Rule.title``/``rationale``
#: on the per-file tier; used by ``--list-rules`` and SARIF metadata).
FLOW_RULE_INFO = {
    "CRS008": (
        "secret value flows into a log, exception message, or repr",
        "Key material, plaintext coordinates, and radii must never appear "
        "in operator-visible text; report structure (type, bit-length, "
        "record id) instead.",
    ),
    "CRS009": (
        "secret value reaches the wire or persistence without a codec",
        "Only ciphertexts and tokens produced by the approved "
        "encrypt/tokenize/codec path may be framed, written, or recorded "
        "as metrics.",
    ),
    "CRS010": (
        "blocking call inside async def without an executor",
        "fsync, socket IO, and pairing-heavy functions stall the event "
        "loop; schedule them via run_in_executor or asyncio.to_thread.",
    ),
    "CRS011": (
        "coordinator fan-out call without deadline propagation",
        "Backend client calls inside _do_* handlers must forward the "
        "remaining request budget (deadline_ms) or slow shards hold the "
        "whole query hostage.",
    ),
}

# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
#: A parameter or attribute whose resolved annotation ends with one of
#: these is secret wherever it appears (any module).  ``SecretKey`` is
#: the generic convention; the named classes are this repo's key types.
SECRET_TYPE_SUFFIXES = (
    "SecretKey",  # SSWSecretKey, PaillierSecretKey, fixture OwnerSecretKey
    "CRSE1Key",
    "CRSE2Key",
    "TagKeys",  # integrity tag keys — derived from the CRSE key
)

#: Parameter names treated as taint sources, but only in modules whose
#: path contains one of :data:`SECRET_PARAM_PATH_SEGMENTS` — a parameter
#: called ``key`` in ``crypto/`` is the scheme key; one in a generic
#: utility is probably a dict key.
SECRET_PARAM_NAMES = frozenset(
    {
        "key",
        "sk",
        "secret",
        "secret_key",
        "beta",
        "point",
        "points",
        "center",
        "radius",
        "r_squared",
        "circle",
        "plaintext",
    }
)

SECRET_PARAM_PATH_SEGMENTS = ("crypto", "core", "integrity")

#: Calls whose *return value* is secret, matched by resolved-name suffix.
SOURCE_CALLS = {
    "ssw_setup": "SSW master key",
    "paillier_keygen": "Paillier secret key",
    "gen_key": "CRSE scheme key",
    "derive_integrity_secret": "integrity tag-key secret",
    "TagKeys.derive": "integrity tag keys",
    "TagKeys.from_secret": "integrity tag keys",
}

#: Source calls that return a tuple where only some slots are secret:
#: ``scheme, key = load_crse2_key(blob)`` taints ``key`` but not the
#: public ``scheme``.  The mask lists per-slot secrecy for a direct
#: tuple-unpack; an un-unpacked result is tainted wholesale.
SOURCE_CALL_MASKS = {
    "load_crse1_key": (False, True),
    "load_crse2_key": (False, True),
}

# ----------------------------------------------------------------------
# Sanitizers
# ----------------------------------------------------------------------
#: Resolved-name suffixes whose return value is clean even when fed
#: secrets: encryption, tokenization, the explicit codecs, key
#: persistence (the owner's approved keystore path), public headers.
SANITIZER_SUFFIXES = (
    "ssw_encrypt",
    "ssw_gen_token",
    "encode_ciphertext",
    "encode_token",
    "save_crse1_key",
    "save_crse2_key",
    "scheme_header",
    "group_header",
    "num_sub_tokens",
    # Integrity tags are HMAC outputs — publishing a MAC of a secret is
    # the subsystem's whole point, so minting one cleans the flow.
    "record_tag",
    "membership_tag",
    "header_fingerprint",
)

#: Terminal attribute names that clean their receiver/arguments:
#: hashing/MACs and crypto-layer transforms.
SANITIZER_ATTRS = frozenset(
    {
        "encrypt",
        "encrypt_point",
        "gen_token",
        "seal",
        "digest",
        "hexdigest",
        "compare_digest",
        "matches",
    }
)

#: Builtins (and stdlib constructors) whose result reveals only structure,
#: never value: using them on a secret is the *recommended* redaction.
CLEAN_BUILTINS = frozenset(
    {
        "len",
        "type",
        "isinstance",
        "issubclass",
        "hasattr",
        "callable",
        "id",
        "bool",
        "enumerate",  # enumerate indexes, values handled separately
        "range",
        "bit_length",
        "sha256",
        "sha384",
        "sha512",
        "sha3_256",
        "blake2b",
        "blake2s",
        "new",  # hmac.new / hashlib.new
    }
)

# ----------------------------------------------------------------------
# CRS008 sinks — logs, exception messages, repr
# ----------------------------------------------------------------------
LOG_RECEIVER_RE = re.compile(r"log", re.IGNORECASE)
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)

# ----------------------------------------------------------------------
# CRS009 sinks — wire frames and persistence
# ----------------------------------------------------------------------
#: Resolved-name suffixes that put bytes on the wire or into reply frames.
WIRE_SINK_SUFFIXES = (
    "write_frame",
    "send_frame",
    "encode_ok",
    "encode_error",
    "encode_request",
)

#: Terminal attribute names that write to sockets or files.
WIRE_SINK_ATTRS = frozenset(
    {
        "sendall",
        "write",
        "writelines",
        "write_text",
        "write_bytes",
    }
)

#: Metrics entry points: a secret in a label or observation leaks it to
#: whoever scrapes the metrics endpoint.
METRIC_SINK_ATTRS = frozenset({"observe", "set_label", "inc", "count"})

# ----------------------------------------------------------------------
# CRS010 — blocking work on the event loop
# ----------------------------------------------------------------------
#: Fully-resolved names that block the calling thread.
BLOCKING_QUALNAMES = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "time.sleep",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_output",
        "select.select",
        "open",
    }
)

#: Terminal attribute names that block regardless of receiver: file
#: sync/IO convenience methods and raw socket operations.
BLOCKING_ATTRS = frozenset(
    {
        "fsync",
        "fdatasync",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "sendall",
        "recv",
        "accept",
        "connect",
    }
)

#: Project functions that are blocking by declaration (CPU-heavy pairing
#: work or fsync-backed storage), matched by resolved-name suffix.  The
#: call-graph closure extends this set transitively, so most storage
#: entry points are *derived*, not listed.
BLOCKING_SUFFIXES = (
    "ssw_query",
    "product_tate_pairing",
    "multi_miller_loop",
    "RecordStore.append",
    "RecordStore.delete",
    "RecordStore.compact",
    "RecordStore.checkpoint_integrity",
    "PartitionMap.save",
    "SegmentLog.append_frames",
)

#: Call names that *schedule* a callable elsewhere: a blocking function
#: passed (not called) into one of these is the approved pattern.
EXECUTOR_SUFFIXES = (
    "run_in_executor",
    "to_thread",
    "_offload",
    "_fan_out",
)

# ----------------------------------------------------------------------
# CRS011 — deadline propagation at coordinator fan-out sites
# ----------------------------------------------------------------------
#: ServiceClient verbs a coordinator handler may invoke; each accepts a
#: ``deadline_ms`` keyword that must carry the remaining budget.
CLIENT_VERBS = frozenset(
    {
        "search",
        "search_batch",
        "search_verified",
        "upload",
        "delete",
        "fetch",
        "export",
        "health",
        "stats",
        "cluster",
    }
)


def is_secret_type(resolved: str | None) -> bool:
    """True if a resolved annotation names a secret key type."""
    if not resolved:
        return False
    return any(
        resolved == suffix or resolved.endswith("." + suffix) or resolved.endswith(suffix)
        for suffix in SECRET_TYPE_SUFFIXES
    )


def _suffix_match(resolved: str, suffixes) -> str | None:
    for suffix in suffixes:
        if resolved == suffix or resolved.endswith("." + suffix):
            return suffix
    return None


def is_source_call(resolved: str | None):
    """``(description, mask)`` if *resolved* is a source call, else None.

    ``mask`` is the per-slot secrecy tuple for tuple-returning sources,
    or ``None`` when the whole return value is secret.
    """
    if not resolved:
        return None
    name = _suffix_match(resolved, SOURCE_CALLS)
    if name is not None:
        return SOURCE_CALLS[name], None
    name = _suffix_match(resolved, SOURCE_CALL_MASKS)
    if name is not None:
        return f"secret from {name}", SOURCE_CALL_MASKS[name]
    return None


def is_sanitizer(resolved: str | None, attr: str | None) -> bool:
    """True if a call to *resolved* (terminal *attr*) cleans its result."""
    if resolved and _suffix_match(resolved, SANITIZER_SUFFIXES):
        return True
    if resolved in CLEAN_BUILTINS:
        return True
    if attr and (attr in SANITIZER_ATTRS or attr in CLEAN_BUILTINS):
        return True
    return False
