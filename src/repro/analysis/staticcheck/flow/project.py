"""Project index for the flow analyzer: modules, functions, resolution.

The per-file tier (:mod:`repro.analysis.staticcheck.rules`) sees one AST
at a time; the flow tier needs to answer questions *across* files: which
function does ``self._persist_map()`` land in, what type is
``self.store``, does ``repro.storage.store.RecordStore.append``
transitively fsync.  This module builds that index:

* every linted file becomes a :class:`ModuleInfo` with a dotted module
  name derived from its path (``src/repro/crypto/ssw.py`` →
  ``repro.crypto.ssw``; fixture trees resolve the same way relative to
  the lint root);
* every module-level function and class method becomes a
  :class:`FunctionInfo` keyed by qualified name;
* imports are resolved into a per-module environment so a call's dotted
  name can be reconstructed (``from repro.service import protocol`` +
  ``protocol.encode_ok`` → ``repro.service.protocol.encode_ok``);
* classes carry light attribute typing: ``self.x = SomeClass(...)`` or a
  parameter assignment whose annotation resolves to a known class lets
  ``self.x.method()`` resolve to that class's method.

Resolution is best-effort by design.  Python's dynamism means some call
sites stay anonymous; the analyzer's specs fall back to terminal
attribute names for those (see ``flow.model``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Sequence

from repro.analysis.staticcheck.engine import (
    FileContext,
    Finding,
    PARSE_ERROR_RULE,
    iter_python_files,
)

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "Project"]


def _module_name(relpath: str) -> str:
    """Dotted module name for a lint-root-relative POSIX path."""
    parts = list(Path(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else relpath


class FunctionInfo:
    """One function or method, with enough context to analyze its body."""

    def __init__(self, qualname: str, node, module: "ModuleInfo", klass=None):
        self.qualname = qualname
        self.node = node
        self.module = module
        self.klass: ClassInfo | None = klass
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        args = node.args
        self.params: list[ast.arg] = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        self.param_names = [a.arg for a in self.params]

    @property
    def name(self) -> str:
        return self.node.name


class ClassInfo:
    """One class: methods, resolved base names, inferred attribute types."""

    def __init__(self, qualname: str, node: ast.ClassDef, module: "ModuleInfo"):
        self.qualname = qualname
        self.node = node
        self.module = module
        self.methods: dict[str, FunctionInfo] = {}
        self.bases: list[str] = []
        #: attribute name -> qualname of the class it is an instance of.
        self.attr_types: dict[str, str] = {}

    @property
    def name(self) -> str:
        return self.node.name


class ModuleInfo:
    """One parsed file plus its import environment."""

    def __init__(self, name: str, ctx: FileContext):
        self.name = name
        self.ctx = ctx
        #: local binding -> dotted name it refers to.
        self.env: dict[str, str] = {}


class Project:
    """The cross-module index the flow rules run against."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: CRS000 findings for files that failed to parse.
        self.parse_failures: list[Finding] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, paths: Sequence[Path], root: Path) -> "Project":
        """Index every Python file under *paths* relative to *root*."""
        project = cls()
        for path in iter_python_files(list(paths)):
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                ctx = FileContext(path, rel, source)
            except (OSError, UnicodeDecodeError):
                continue
            except SyntaxError as exc:
                project.parse_failures.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            project._index_module(_module_name(rel), ctx)
        project._infer_attr_types()
        return project

    def _index_module(self, name: str, ctx: FileContext) -> None:
        module = ModuleInfo(name, ctx)
        self.modules[name] = module
        package = name.rsplit(".", 1)[0] if "." in name else ""
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.env[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = name.split(".")
                    # level 1 = current package, 2 = parent, ...
                    keep = len(prefix_parts) - node.level
                    prefix = ".".join(prefix_parts[:keep]) if keep > 0 else ""
                    if package and keep == len(prefix_parts) - 1:
                        prefix = package
                    base = f"{prefix}.{base}" if base and prefix else (prefix or base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.env[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{name}.{node.name}"
                module.env[node.name] = qual
                self.functions[qual] = FunctionInfo(qual, node, module)
            elif isinstance(node, ast.ClassDef):
                qual = f"{name}.{node.name}"
                module.env[node.name] = qual
                klass = ClassInfo(qual, node, module)
                self.classes[qual] = klass
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{qual}.{item.name}"
                        info = FunctionInfo(mqual, item, module, klass=klass)
                        klass.methods[item.name] = info
                        self.functions[mqual] = info
        # Base names need the full env, so resolve them in a second sweep.
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                klass = self.classes[f"{name}.{node.name}"]
                for base in node.bases:
                    resolved = self.resolve_dotted(module, base)
                    if resolved:
                        klass.bases.append(resolved)

    # ------------------------------------------------------------------
    # Attribute typing
    # ------------------------------------------------------------------
    def _infer_attr_types(self) -> None:
        """Infer ``self.attr`` instance types from assignments.

        Two patterns are recognized, both common in this codebase:
        ``self.x = KnownClass(...)`` (or ``KnownClass.open(...)`` — a
        classmethod constructor) and ``self.x = param`` where the
        parameter's annotation resolves to a known class.
        """
        for klass in self.classes.values():
            for method in klass.methods.values():
                ann_types: dict[str, str] = {}
                for arg in method.params:
                    if arg.annotation is None:
                        continue
                    resolved = self._annotation_class(
                        method.module, arg.annotation
                    )
                    if resolved:
                        ann_types[arg.arg] = resolved
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        inferred = self._value_class(
                            method.module, node.value, ann_types
                        )
                        if inferred and target.attr not in klass.attr_types:
                            klass.attr_types[target.attr] = inferred

    def _annotation_class(self, module: ModuleInfo, node) -> str | None:
        """The known class an annotation names, unwrapping ``X | None``."""
        if isinstance(node, ast.BinOp):
            return self._annotation_class(
                module, node.left
            ) or self._annotation_class(module, node.right)
        if isinstance(node, ast.Subscript):  # Optional[X] / list[X]: skip list
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: match by bare class name.
            cand = node.value.strip().strip('"')
            resolved = module.env.get(cand)
            return resolved if resolved in self.classes else None
        resolved = self.resolve_dotted(module, node)
        return resolved if resolved in self.classes else None

    def _value_class(self, module, value, ann_types: dict[str, str]) -> str | None:
        if isinstance(value, ast.Name):
            return ann_types.get(value.id)
        if isinstance(value, ast.Call):
            resolved = self.resolve_dotted(module, value.func)
            if resolved in self.classes:
                return resolved
            # Classmethod constructors: KnownClass.open(...).
            if resolved and "." in resolved:
                owner = resolved.rsplit(".", 1)[0]
                if owner in self.classes:
                    return owner
        return None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, module: ModuleInfo, node) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, or ``None``.

        Bare names that are neither imported nor defined in the module
        resolve to themselves (builtins like ``open`` match specs that
        way); anything rooted in a call or subscript stays unresolved.
        """
        if isinstance(node, ast.Name):
            return module.env.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve_dotted(module, node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def class_info(self, qualname: str | None) -> ClassInfo | None:
        """The :class:`ClassInfo` for a dotted qualname, if indexed."""
        if qualname is None:
            return None
        return self.classes.get(qualname)

    def lookup_method(self, klass: ClassInfo, name: str) -> FunctionInfo | None:
        """Find *name* on *klass* or (depth-first) its known bases."""
        seen: set[str] = set()

        def walk(k: ClassInfo) -> FunctionInfo | None:
            if k.qualname in seen:
                return None
            seen.add(k.qualname)
            if name in k.methods:
                return k.methods[name]
            for base in k.bases:
                base_info = self.classes.get(base)
                if base_info is not None:
                    found = walk(base_info)
                    if found is not None:
                        return found
            return None

        return walk(klass)

    def attr_type_of(self, klass: ClassInfo, attr: str) -> ClassInfo | None:
        """The class of ``self.<attr>``, searching known bases too."""
        cursor: ClassInfo | None = klass
        seen: set[str] = set()
        while cursor is not None and cursor.qualname not in seen:
            seen.add(cursor.qualname)
            if attr in cursor.attr_types:
                return self.classes.get(cursor.attr_types[attr])
            cursor = next(
                (
                    self.classes[b]
                    for b in cursor.bases
                    if b in self.classes
                ),
                None,
            )
        return None

    def resolve_call(
        self,
        func_info: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str] | None = None,
    ) -> tuple[str | None, FunctionInfo | None]:
        """Resolve a call site to ``(dotted_name, FunctionInfo | None)``.

        Handles plain names, dotted module functions, ``self.method()``
        (including inherited methods), ``self.attr.method()`` via
        inferred attribute types, ``local.method()`` via *local_types*
        (variable name -> class qualname), and ``Class.method(...)``.
        """
        module = func_info.module
        func = call.func
        local_types = local_types or {}
        if isinstance(func, ast.Name):
            resolved = module.env.get(func.id, func.id)
            return resolved, self.functions.get(resolved)
        if not isinstance(func, ast.Attribute):
            return None, None
        base = func.value
        # self.method() / cls.method()
        if (
            isinstance(base, ast.Name)
            and base.id in ("self", "cls")
            and func_info.klass is not None
        ):
            method = self.lookup_method(func_info.klass, func.attr)
            if method is not None:
                return method.qualname, method
            return f"{func_info.klass.qualname}.{func.attr}", None
        # self.attr.method() via inferred attribute types
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and func_info.klass is not None
        ):
            owner = self.attr_type_of(func_info.klass, base.attr)
            if owner is not None:
                method = self.lookup_method(owner, func.attr)
                if method is not None:
                    return method.qualname, method
                return f"{owner.qualname}.{func.attr}", None
        # local.method() via local instance tracking
        if isinstance(base, ast.Name) and base.id in local_types:
            owner = self.classes.get(local_types[base.id])
            if owner is not None:
                method = self.lookup_method(owner, func.attr)
                if method is not None:
                    return method.qualname, method
                return f"{owner.qualname}.{func.attr}", None
        # module.function() / Class.method() via the import env
        resolved = self.resolve_dotted(module, func)
        if resolved is None:
            return None, None
        info = self.functions.get(resolved)
        if info is None and "." in resolved:
            # Class.method where Class resolves but the dotted join does
            # not (e.g. imported class): try the class registry.
            owner_name = resolved.rsplit(".", 1)[0]
            owner = self.classes.get(owner_name)
            if owner is not None:
                info = self.lookup_method(owner, func.attr)
                if info is not None:
                    resolved = info.qualname
        return resolved, info

    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function and method, in definition order."""
        yield from self.functions.values()
