"""SARIF 2.1.0 serialization of lint findings.

Minimal but valid: one run, one tool, rule metadata for both tiers
(per-file CRS001–CRS007 from the registry, flow CRS008–CRS011 from the
flow model), and one result per finding with a physical location.  CI
uploads the file so findings render as code-scanning annotations.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.staticcheck.engine import REGISTRY, Finding
from repro.analysis.staticcheck.flow.model import FLOW_RULE_INFO

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors() -> list[dict]:
    # Importing the rule pack populates the per-file registry.
    from repro.analysis.staticcheck import rules as _rules  # noqa: F401

    descriptors = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
            }
        )
    for rule_id in sorted(FLOW_RULE_INFO):
        title, rationale = FLOW_RULE_INFO[rule_id]
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title},
                "fullDescription": {"text": rationale},
            }
        )
    return descriptors


def to_sarif(findings: Sequence[Finding]) -> dict:
    """Render *findings* as a SARIF 2.1.0 log (JSON-ready dict)."""
    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "partialFingerprints": {
                    "reprolint/v2": finding.fingerprint,
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                                "snippet": {"text": finding.snippet},
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": _rule_descriptors(),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }
