"""Command-line front end for ``reprolint``.

Run as ``python -m repro.analysis.staticcheck [paths]`` or via the library
CLI as ``python -m repro lint [paths]``.  Exit codes:

* ``0`` — no new findings (clean, or everything suppressed/baselined);
* ``1`` — at least one new finding (or, under ``--strict``, a stale
  baseline entry);
* ``2`` — the analyzer itself failed (bad path, malformed baseline,
  unknown rule selection).

``--flow`` adds the project-wide taint/concurrency tier (CRS008–CRS011,
see :mod:`repro.analysis.staticcheck.flow`); ``--format sarif`` emits a
SARIF 2.1.0 log for CI code-scanning annotations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.staticcheck.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.engine import REGISTRY, Finding, lint_paths
from repro.analysis.staticcheck.flow.model import FLOW_RULE_INFO, FLOW_RULES
from repro.errors import StaticAnalysisError

__all__ = ["build_parser", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the standalone ``reprolint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Crypto-aware static analysis for the repro codebase "
        "(per-file rules CRS001-CRS007; --flow adds the project-wide "
        "taint/concurrency rules CRS008-CRS011).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (sarif: SARIF 2.1.0 for CI annotations)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the project-wide taint/concurrency tier "
        "(CRS008-CRS011)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally fail when the baseline contains stale entries "
        "(fingerprints matching no current finding)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{BASELINE_FILENAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    preferred = Path("src/repro")
    return [preferred] if preferred.is_dir() else [Path(".")]


def _resolve_baseline_path(
    baseline: Path | None, no_baseline: bool, root: Path
) -> Path | None:
    if no_baseline:
        return None
    if baseline is not None:
        return baseline
    default = root / BASELINE_FILENAME
    return default if default.exists() else None


def _print_rule_table(out: TextIO) -> None:
    # Importing the rule pack populates the registry.
    from repro.analysis.staticcheck import rules as _rules  # noqa: F401

    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        print(f"{rule_id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)
    for rule_id in sorted(FLOW_RULE_INFO):
        title, rationale = FLOW_RULE_INFO[rule_id]
        print(f"{rule_id}  {title} [--flow]", file=out)
        print(f"        {rationale}", file=out)


def _split_select(
    select: str | None,
) -> tuple[list[str] | None, list[str] | None, bool]:
    """Split ``--select`` into (per-file ids, flow ids, any_flow).

    Unknown-id validation for the per-file part stays with
    :func:`active_rules`; flow ids are validated here since the flow tier
    has no registry.
    """
    if not select:
        return None, None, True
    ids = [part.strip() for part in select.split(",") if part.strip()]
    syntactic = [i for i in ids if i not in FLOW_RULES]
    flow = [i for i in ids if i in FLOW_RULES]
    return syntactic, flow, bool(flow)


def run_lint(
    paths: Sequence[Path] | None = None,
    *,
    output_format: str = "human",
    baseline: Path | None = None,
    no_baseline: bool = False,
    write_baseline_file: bool = False,
    select: str | None = None,
    root: Path | None = None,
    flow: bool = False,
    strict: bool = False,
    out: TextIO | None = None,
) -> int:
    """Programmatic lint run shared by both CLI entry points.

    Returns the process exit code (see module docstring).  Analyzer
    failures are printed to stderr and reported as :data:`EXIT_ERROR`
    rather than raised, so both CLIs behave identically.
    """
    out = out if out is not None else sys.stdout
    root = root if root is not None else Path.cwd()
    lint_targets = list(paths) if paths else _default_paths()
    syntactic_select, flow_select, flow_wanted = _split_select(select)
    try:
        if syntactic_select == []:
            findings = []  # --select named only flow rules
        else:
            findings = lint_paths(
                lint_targets, root=root, select=syntactic_select
            )
        if flow and flow_wanted:
            from repro.analysis.staticcheck.flow import analyze_flow

            findings = sorted(
                [*findings, *analyze_flow(lint_targets, root, flow_select)],
                key=Finding.sort_key,
            )
        baseline_path = _resolve_baseline_path(baseline, no_baseline, root)
        if write_baseline_file:
            target = baseline_path or (root / BASELINE_FILENAME)
            write_baseline(target, findings)
            print(
                f"wrote {len(findings)} finding(s) to baseline {target}",
                file=out,
            )
            return EXIT_CLEAN
        known = load_baseline(baseline_path)
    except StaticAnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    new, suppressed = partition_findings(findings, known)
    stale: list[str] = []
    if strict:
        current = {f.fingerprint for f in findings}
        stale = sorted(known - current)

    if output_format == "sarif":
        from repro.analysis.staticcheck.sarif import to_sarif

        print(json.dumps(to_sarif(new), indent=2), file=out)
    elif output_format == "json":
        payload = {
            "findings": [f.to_dict() for f in new],
            "suppressed": len(suppressed),
            "stale_baseline": stale,
            "baseline": str(baseline_path) if baseline_path else None,
            "rules": sorted({*REGISTRY, *FLOW_RULES}),
        }
        print(json.dumps(payload, indent=2), file=out)
    else:
        for finding in new:
            print(finding.render(), file=out)
        summary = f"{len(new)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        if stale:
            summary += (
                f", {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (--strict: "
                "regenerate with --write-baseline)"
            )
        print(summary, file=out)
    return EXIT_FINDINGS if (new or stale) else EXIT_CLEAN


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    """Entry point for ``python -m repro.analysis.staticcheck``."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_table(out)
        return EXIT_CLEAN
    return run_lint(
        args.paths,
        output_format=args.format,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_file=args.write_baseline,
        select=args.select,
        root=args.root,
        flow=args.flow,
        strict=args.strict,
        out=out,
    )
