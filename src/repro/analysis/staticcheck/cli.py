"""Command-line front end for ``reprolint``.

Run as ``python -m repro.analysis.staticcheck [paths]`` or via the library
CLI as ``python -m repro lint [paths]``.  Exit codes:

* ``0`` — no new findings (clean, or everything suppressed/baselined);
* ``1`` — at least one new finding;
* ``2`` — the analyzer itself failed (bad path, malformed baseline,
  unknown rule selection).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.staticcheck.baseline import (
    BASELINE_FILENAME,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.engine import REGISTRY, lint_paths
from repro.errors import StaticAnalysisError

__all__ = ["build_parser", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the standalone ``reprolint`` entry point."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Crypto-aware static analysis for the repro codebase "
        "(rules CRS001-CRS007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{BASELINE_FILENAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="directory findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    preferred = Path("src/repro")
    return [preferred] if preferred.is_dir() else [Path(".")]


def _resolve_baseline_path(
    baseline: Path | None, no_baseline: bool, root: Path
) -> Path | None:
    if no_baseline:
        return None
    if baseline is not None:
        return baseline
    default = root / BASELINE_FILENAME
    return default if default.exists() else None


def _print_rule_table(out: TextIO) -> None:
    # Importing the rule pack populates the registry.
    from repro.analysis.staticcheck import rules as _rules  # noqa: F401

    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        print(f"{rule_id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)


def run_lint(
    paths: Sequence[Path] | None = None,
    *,
    output_format: str = "human",
    baseline: Path | None = None,
    no_baseline: bool = False,
    write_baseline_file: bool = False,
    select: str | None = None,
    root: Path | None = None,
    out: TextIO | None = None,
) -> int:
    """Programmatic lint run shared by both CLI entry points.

    Returns the process exit code (see module docstring).  Analyzer
    failures are printed to stderr and reported as :data:`EXIT_ERROR`
    rather than raised, so both CLIs behave identically.
    """
    out = out if out is not None else sys.stdout
    root = root if root is not None else Path.cwd()
    lint_targets = list(paths) if paths else _default_paths()
    selected = select.split(",") if select else None
    try:
        findings = lint_paths(lint_targets, root=root, select=selected)
        baseline_path = _resolve_baseline_path(baseline, no_baseline, root)
        if write_baseline_file:
            target = baseline_path or (root / BASELINE_FILENAME)
            write_baseline(target, findings)
            print(
                f"wrote {len(findings)} finding(s) to baseline {target}",
                file=out,
            )
            return EXIT_CLEAN
        known = load_baseline(baseline_path)
    except StaticAnalysisError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    new, suppressed = partition_findings(findings, known)

    if output_format == "json":
        payload = {
            "findings": [f.to_dict() for f in new],
            "suppressed": len(suppressed),
            "baseline": str(baseline_path) if baseline_path else None,
            "rules": sorted(REGISTRY),
        }
        print(json.dumps(payload, indent=2), file=out)
    else:
        for finding in new:
            print(finding.render(), file=out)
        summary = f"{len(new)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        print(summary, file=out)
    return EXIT_FINDINGS if new else EXIT_CLEAN


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    """Entry point for ``python -m repro.analysis.staticcheck``."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_table(out)
        return EXIT_CLEAN
    return run_lint(
        args.paths,
        output_format=args.format,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_file=args.write_baseline,
        select=args.select,
        root=args.root,
        out=out,
    )
