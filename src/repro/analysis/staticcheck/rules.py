"""The ``reprolint`` rule pack: crypto-aware checks for this codebase.

Each rule encodes one implementation-level invariant the scheme's security
rests on but the type system cannot see.  The rules are heuristic — they
trade exhaustive dataflow analysis for predictable, reviewable behaviour —
and every heuristic is documented on the rule class.  False positives are
handled by inline ``# reprolint: ignore[...]`` comments (with a
justification) or the baseline file, never by weakening the rule.

| ID     | What it catches                                              |
|--------|--------------------------------------------------------------|
| CRS001 | non-CSPRNG ``random`` in key/token-generation paths          |
| CRS002 | variable-time ``==``/``!=`` on secret-named values           |
| CRS003 | pairing/deserialization without membership validation        |
| CRS004 | security invariants guarded by bare ``assert``               |
| CRS005 | unsafe deserialization primitives (pickle/eval/exec)         |
| CRS006 | CRSE-II permutations derived from fixed seeds/β              |
| CRS007 | non-atomic persistence writes (no fsync/os.replace)          |

Rules CRS008–CRS011 (secret taint flows, blocking calls in ``async def``,
deadline propagation) are project-wide and live in the ``flow``
subpackage; enable them with ``--flow``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.staticcheck.engine import (
    FileContext,
    Finding,
    Rule,
    register,
)

__all__ = [
    "InsecureRandomnessRule",
    "VariableTimeComparisonRule",
    "UnvalidatedGroupElementRule",
    "BareAssertRule",
    "UnsafeDeserializationRule",
    "PermutationReuseRule",
    "NonAtomicPersistenceRule",
    "SECRET_WORDS",
]

# Directory names that hold key- and token-generation code in this repo.
_KEY_PATH_SEGMENTS = ("crypto", "core", "math")

# Identifier components that mark a binding as secret material.
SECRET_WORDS = frozenset(
    {
        "key",
        "token",
        "subtoken",
        "secret",
        "mac",
        "tag",
        "digest",
        "nonce",
        "password",
        "radii",
        "sk",
    }
)

_CAMEL_SPLIT = re.compile(r"[_\W]+|(?<=[a-z0-9])(?=[A-Z])")


def _is_secret_name(name: str) -> bool:
    """True if *name* looks like it binds secret material.

    ALL_CAPS names are treated as public constants by convention (sizes,
    format tags) and never match.
    """
    if not name or name.isupper():
        return False
    for part in _CAMEL_SPLIT.split(name):
        part = part.lower()
        if part in SECRET_WORDS or part.rstrip("s") in SECRET_WORDS:
            return True
    return False


def _call_name(node: ast.Call) -> str:
    """The called function's terminal name (``hmac.compare_digest`` -> that attr)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@register
class InsecureRandomnessRule(Rule):
    """CRS001 — non-CSPRNG randomness in key/token-generation paths.

    Flags, in files under ``crypto/``, ``core/``, or ``math/``:

    * any value-position use of ``random.<attr>`` except
      ``random.SystemRandom`` (so ``random.Random(...)``,
      ``random.randrange``, … are findings);
    * the bare ``random`` module used as an RNG value (the ``rng = rng or
      random`` idiom).

    Type annotations (``rng: random.Random``) are exempt — they are types,
    not entropy sources.  Deterministic-by-design call sites (test parameter
    helpers, interoperable generator derivation) carry inline suppressions
    with a stated justification.
    """

    def __init__(self) -> None:
        self.rule_id = "CRS001"
        self.title = "insecure randomness"
        self.rationale = (
            "SSW/CRSE keys, token blinding, and Paillier primes drawn from "
            "the Mersenne Twister are predictable; use secrets or "
            "random.SystemRandom()."
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment(*_KEY_PATH_SEGMENTS):
            return
        # Names that are the base of a `random.X` attribute access are
        # reported via the attribute, not double-reported as bare uses.
        attribute_bases: set[int] = set()
        attributes: list[ast.Attribute] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "random"
            ):
                attribute_bases.add(id(node.value))
                attributes.append(node)
        for attr in attributes:
            if ctx.in_annotation(attr):
                continue
            if attr.attr == "SystemRandom":
                continue
            yield ctx.finding(
                self.rule_id,
                attr,
                f"`random.{attr.attr}` is not a CSPRNG; use `secrets` or "
                "`random.SystemRandom()` for key/token material",
            )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Name)
                and node.id == "random"
                and isinstance(node.ctx, ast.Load)
                and id(node) not in attribute_bases
                and not ctx.in_annotation(node)
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "the module-level `random` generator is not a CSPRNG; "
                    "use `random.SystemRandom()` as the fallback source",
                )


@register
class VariableTimeComparisonRule(Rule):
    """CRS002 — variable-time equality on secret-named values.

    Flags ``==``/``!=`` comparisons, in files under ``crypto/``, ``core/``,
    or ``cloud/``, where an operand is a name or attribute whose identifier
    contains a secret word (``key``, ``token``, ``tag``, ``digest``,
    ``radii``, …).  Comparisons against literal constants and ALL_CAPS
    constants are exempt; ``hmac.compare_digest`` is the required
    replacement for the rest.  Identity tests (``is``/``in``) are out of
    scope — they do not iterate secret bytes.
    """

    _SCOPE = ("crypto", "core", "cloud")

    def __init__(self) -> None:
        self.rule_id = "CRS002"
        self.title = "variable-time comparison"
        self.rationale = (
            "`==` on keys/tokens/tags short-circuits at the first "
            "mismatching byte, leaking secret prefixes through timing; "
            "hmac.compare_digest is constant-time."
        )

    @staticmethod
    def _operand_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment(*self._SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(isinstance(operand, ast.Constant) for operand in operands):
                continue
            names = [self._operand_name(op) for op in operands]
            if any(name.isupper() for name in names if name):
                continue
            secret = next((n for n in names if _is_secret_name(n)), None)
            if secret is None:
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"variable-time comparison of secret-named value "
                f"`{secret}`; use hmac.compare_digest over a canonical "
                "byte encoding",
            )


@register
class UnvalidatedGroupElementRule(Rule):
    """CRS003 — group backends must validate elements they pair/deserialize.

    Group elements arriving from outside (deserialization) or crossing an
    API boundary (pairing operands) must be checked for membership in the
    order-``N`` subgroup of the composite group before use — otherwise a
    malicious ciphertext can smuggle small-subgroup points past the scheme.

    Heuristic, scoped to files under ``crypto/groups/``: a function named
    ``pair`` must both type/membership-check its operands (an
    ``isinstance(...)`` test or a call whose name contains ``member``,
    ``validate``, or ``check``) and be able to reject them (a ``raise``);
    a function named ``deserialize_element`` or ``decompress`` must contain
    a ``raise`` (rejecting non-elements) to count as validating.
    """

    _VALIDATOR_HINT = re.compile(r"member|validate|check", re.IGNORECASE)

    def __init__(self) -> None:
        self.rule_id = "CRS003"
        self.title = "unvalidated group element"
        self.rationale = (
            "pairing or deserializing unvalidated points enables "
            "small-subgroup and invalid-encoding attacks on the "
            "composite-order group N = p1*p2*p3*p4."
        )

    @staticmethod
    def _is_abstract(func: ast.FunctionDef) -> bool:
        """Abstract or bodyless declarations define no behaviour to check."""
        for decorator in func.decorator_list:
            name = (
                decorator.attr
                if isinstance(decorator, ast.Attribute)
                else decorator.id if isinstance(decorator, ast.Name) else ""
            )
            if "abstract" in name:
                return True
        body = [
            stmt
            for stmt in func.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            and not isinstance(stmt, ast.Pass)
        ]
        return not body

    def _has_raise(self, func: ast.FunctionDef) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(func))

    def _has_membership_test(self, func: ast.FunctionDef) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name == "isinstance" or self._VALIDATOR_HINT.search(name):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment("groups"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if self._is_abstract(node):
                continue
            if node.name == "pair":
                if not (self._has_raise(node) and self._has_membership_test(node)):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "`pair` uses its operands without validating group "
                        "membership (isinstance/membership check + raise)",
                    )
            elif node.name in ("deserialize_element", "decompress"):
                if not self._has_raise(node):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"`{node.name}` builds group elements from bytes "
                        "without rejecting non-members (no raise path)",
                    )


@register
class BareAssertRule(Rule):
    """CRS004 — security invariants must not rely on bare ``assert``.

    ``python -O`` strips every ``assert``, silently removing the guard.  In
    files under ``crypto/`` or ``core/`` every ``assert`` is flagged;
    invariants there must raise a typed :mod:`repro.errors` exception
    instead.  (Tests and benchmarks are outside the lint scope and assert
    freely.)
    """

    def __init__(self) -> None:
        self.rule_id = "CRS004"
        self.title = "bare assert guards invariant"
        self.rationale = (
            "asserts vanish under `python -O`, turning a rejected invalid "
            "input into silent acceptance; raise CryptoError/ParameterError "
            "instead."
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment("crypto", "core"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "security invariant guarded by bare `assert` (stripped "
                    "under python -O); raise a repro.errors exception",
                )


@register
class UnsafeDeserializationRule(Rule):
    """CRS005 — unsafe deserialization primitives are banned everywhere.

    Flags imports of ``pickle``/``cPickle``/``marshal``/``shelve``/``dill``
    and calls to the ``eval``/``exec`` builtins anywhere in the linted tree.
    Ciphertexts, tokens, and keys cross trust boundaries as bytes; the only
    acceptable codecs are the explicit ones in ``crypto/serialize.py`` and
    ``cloud/codec.py`` (length-checked elements, JSON headers).
    """

    _BANNED_MODULES = frozenset({"pickle", "cPickle", "marshal", "shelve", "dill"})
    _BANNED_BUILTINS = frozenset({"eval", "exec"})

    def __init__(self) -> None:
        self.rule_id = "CRS005"
        self.title = "unsafe deserialization"
        self.rationale = (
            "pickle/eval/exec execute attacker-controlled input; a "
            "malicious record or token blob would own the server process."
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._BANNED_MODULES:
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"import of unsafe deserialization module "
                            f"`{alias.name}`",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._BANNED_MODULES:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"import from unsafe deserialization module "
                        f"`{node.module}`",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._BANNED_BUILTINS
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"call to `{func.id}` on dynamic input; parse "
                        "explicitly instead",
                    )


@register
class PermutationReuseRule(Rule):
    """CRS006 — CRSE-II sub-token permutations need per-query randomness.

    The paper permutes the ``m`` sub-tokens "with a fresh random β each
    time"; a fixed β (or a β drawn from a fixed-seed RNG) makes the
    permutation constant across queries, so the server can align sub-tokens
    with concentric circles and recover the radius pattern the permutation
    exists to hide.

    Flags, in files under ``core/``:

    * ``permute(seq, <literal>)`` / ``permutation_from_beta(n, <literal>)``
      — a hard-coded β;
    * ``random_beta(n, random.Random(<literal>))`` (or ``Random(<literal>)``)
      — per-query β from a fixed seed.
    """

    def __init__(self) -> None:
        self.rule_id = "CRS006"
        self.title = "permutation reuse"
        self.rationale = (
            "a constant sub-token order lets the server correlate matches "
            "to concentric circles, defeating Permute's radius-pattern "
            "hiding (paper Sec. VI-C)."
        )

    @staticmethod
    def _second_arg(node: ast.Call, keyword: str) -> ast.expr | None:
        if len(node.args) >= 2:
            return node.args[1]
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    @staticmethod
    def _is_fixed_seed_rng(node: ast.expr | None) -> bool:
        """True for ``random.Random(<constants>)`` / ``Random(<constants>)``."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "Random":
            return False
        return bool(node.args) and all(
            isinstance(arg, ast.Constant) for arg in node.args
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment("core"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in ("permute", "permutation_from_beta"):
                beta = self._second_arg(node, "beta")
                if isinstance(beta, ast.Constant):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"`{name}` called with a hard-coded β; β must be "
                        "drawn fresh per query (random_beta with the "
                        "query RNG)",
                    )
            elif name == "random_beta":
                rng = self._second_arg(node, "rng")
                if self._is_fixed_seed_rng(rng):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "`random_beta` fed a fixed-seed RNG; the permutation "
                        "repeats across queries and leaks the radius pattern",
                    )


@register
class NonAtomicPersistenceRule(Rule):
    """CRS007 — persistence writes must be atomic or explicitly synced.

    The durability contract of :mod:`repro.storage` rests on two disk
    idioms: *replace* (write a temp file, fsync, ``os.replace`` over the
    target — the manifest pattern) and *append-and-sync* (append frames,
    then fsync before acking — the segment pattern).  A plain
    ``open(path, "w")`` + ``write`` with neither leaves a torn file after
    a crash that the recovery path cannot distinguish from corruption.

    Heuristic, scoped to files under ``storage/`` or ``service/``, judged
    one function at a time.  A function shows *evidence* of crash-safety
    if it calls anything whose name contains ``replace``, ``rename``, or
    ``fsync``.  Without evidence, it is flagged for:

    * ``open(path, <mode with w/a/x/+>)`` (builtin or ``.open`` method)
      in a function that also calls ``.write``/``.writelines``;
    * ``os.open(..., O_WRONLY/O_RDWR/...)`` in a function that also calls
      ``os.write``;
    * any ``.write_text`` / ``.write_bytes`` call (these always replace
      the whole file content, non-atomically).

    Read-only opens and functions that merely *return* an open handle
    (the caller owns the sync) are not flagged.
    """

    _EVIDENCE = re.compile(r"replace|rename|fsync", re.IGNORECASE)
    _WRITE_FLAG = re.compile(r"O_WRONLY|O_RDWR|O_APPEND|O_CREAT|O_TRUNC")

    def __init__(self) -> None:
        self.rule_id = "CRS007"
        self.title = "non-atomic persistence write"
        self.rationale = (
            "a crash mid-write leaves a torn file; durable state needs "
            "the tmp+fsync+os.replace idiom or append+fsync before ack."
        )

    @staticmethod
    def _mode_of(node: ast.Call) -> str | None:
        """The mode string of an ``open``-style call, if statically known."""
        mode_arg: ast.expr | None = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            if len(node.args) >= 2:
                mode_arg = node.args[1]
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
            if node.args:
                mode_arg = node.args[0]
        if mode_arg is None:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode_arg = kw.value
        if isinstance(mode_arg, ast.Constant) and isinstance(
            mode_arg.value, str
        ):
            return mode_arg.value
        return None

    @classmethod
    def _is_write_os_open(cls, node: ast.Call) -> bool:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "open"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
        ):
            return False
        flags = ast.unparse(node.args[1]) if len(node.args) >= 2 else ""
        return bool(cls._WRITE_FLAG.search(flags))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.has_path_segment("storage", "service"):
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            evidence = False
            write_opens: list[ast.Call] = []
            os_opens: list[ast.Call] = []
            whole_file_writes: list[ast.Call] = []
            has_write_call = False
            has_os_write = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if self._EVIDENCE.search(name):
                    evidence = True
                if name in ("write", "writelines"):
                    has_write_call = True
                    if (
                        isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "os"
                    ):
                        has_os_write = True
                if name in ("write_text", "write_bytes"):
                    whole_file_writes.append(node)
                if self._is_write_os_open(node):
                    os_opens.append(node)
                else:
                    mode = self._mode_of(node)
                    if mode is not None and any(
                        c in mode for c in "wax+"
                    ):
                        write_opens.append(node)
            if evidence:
                continue
            for call in whole_file_writes:
                yield ctx.finding(
                    self.rule_id,
                    call,
                    f"`{_call_name(call)}` replaces file content without "
                    "the tmp+fsync+os.replace idiom; a crash mid-write "
                    "tears the file",
                )
            if has_write_call:
                for call in write_opens:
                    yield ctx.finding(
                        self.rule_id,
                        call,
                        "file opened for writing and written without "
                        "fsync or os.replace in the same function; the "
                        "write is not crash-safe",
                    )
            if has_os_write:
                for call in os_opens:
                    yield ctx.finding(
                        self.rule_id,
                        call,
                        "os.open'd file written without fsync or "
                        "os.replace in the same function; the write is "
                        "not crash-safe",
                    )
