"""Asymptotics of the concentric-circle count (the Fig. 9 curve, analyzed).

The paper bounds ``m <= R² + 1`` and plots how far below the bound the true
count sits.  Classical analytic number theory makes that precise: the
number of integers up to ``x`` expressible as a sum of two squares is
asymptotically ``K·x/√ln x`` with ``K ≈ 0.7642`` the **Landau-Ramanujan
constant**.  These helpers provide the estimate, the implied cost curves
for CRSE-II, and the crossover radius where CRSE-I's exponential token
overtakes any fixed budget — the analytical companions to the measured
benchmarks.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.analysis.opcount import (
    crse2_gen_token_ops,
    crse2_search_record_ops,
)
from repro.core.concircles import num_concentric_circles

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cloud.costmodel import CostModel
from repro.core.split import naive_alpha, optimized_alpha
from repro.errors import ParameterError

__all__ = [
    "LANDAU_RAMANUJAN",
    "landau_ramanujan_estimate",
    "predicted_m",
    "crse2_cost_curve",
    "crse1_max_feasible_radius",
]

#: The Landau-Ramanujan constant (density of sums of two squares).
LANDAU_RAMANUJAN = 0.76422365358922

# Second-order correction factor (Shanks): the density is
# K/√ln x · (1 + C/ln x + …) with C ≈ 0.581948659.
_SHANKS_C = 0.581948659


def landau_ramanujan_estimate(x: float) -> float:
    """Estimate of ``#{n <= x : n = a² + b²}`` (with Shanks' correction).

    Raises:
        ParameterError: For ``x < 2`` (the asymptotic regime needs ln x > 0).
    """
    if x < 2:
        raise ParameterError("estimate needs x >= 2")
    lx = math.log(x)
    return LANDAU_RAMANUJAN * x / math.sqrt(lx) * (1.0 + _SHANKS_C / lx)


def predicted_m(radius: int) -> float:
    """Analytic prediction of the concentric-circle count at *radius*."""
    if radius < 2:
        return float(num_concentric_circles(radius * radius))
    return landau_ramanujan_estimate(radius * radius)


def crse2_cost_curve(
    radii: list[int], model: "CostModel", w: int = 2
) -> list[dict]:
    """Predicted CRSE-II cost profile across *radii* under *model*.

    Returns one row per radius with the exact ``m``, the analytic
    prediction, and the modeled token-generation and average-case search
    times in seconds.
    """
    rows = []
    for radius in radii:
        m = num_concentric_circles(radius * radius, w)
        rows.append(
            {
                "radius": radius,
                "m": m,
                "m_predicted": predicted_m(radius),
                "token_s": model.time_s(crse2_gen_token_ops(m, w)),
                "avg_search_record_s": model.time_s(
                    crse2_search_record_ops(max(1, m // 2), w)
                ),
            }
        )
    return rows


def crse1_max_feasible_radius(
    max_alpha: int, w: int = 2, optimized: bool = True
) -> int:
    """Largest radius whose CRSE-I vector length stays within *max_alpha*.

    This is the quantitative version of the paper's "impractical for
    circular range queries with large radiuses": the feasible radius under
    any real budget is tiny (R = 3-5), even with the optimized split.

    Raises:
        ParameterError: If no radius fits (``max_alpha`` below the R = 0
            cost).
    """
    if max_alpha < w + 2:
        raise ParameterError("budget below the single-circle vector length")
    alpha_of = optimized_alpha if optimized else naive_alpha
    radius = 0
    while True:
        m_next = num_concentric_circles((radius + 1) * (radius + 1), w)
        if alpha_of(w, m_next) > max_alpha:
            return radius
        radius += 1
