"""Cryptographic operation counts for every scheme algorithm.

The paper's running times are dominated by group operations ("pairing
operations … are the dominating operations in our search process", Sec.
VIII, 0.44 ms each on EC2).  These formulas count the pairings,
exponentiations, and multiplications our implementations perform, so the
cost model (:mod:`repro.cloud.costmodel`) can translate *operation counts*
into paper-scale milliseconds independent of the Python constant factor.

The counts mirror :mod:`repro.crypto.ssw` exactly; the test suite verifies
them dynamically by running the algorithms on an instrumented group.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "OpCount",
    "ssw_setup_ops",
    "ssw_encrypt_ops",
    "ssw_gen_token_ops",
    "ssw_query_ops",
    "crse2_encrypt_ops",
    "crse2_gen_token_ops",
    "crse2_search_record_ops",
    "crse1_encrypt_ops",
    "crse1_gen_token_ops",
    "crse1_search_record_ops",
]


@dataclass(frozen=True)
class OpCount:
    """Pairings, group exponentiations, multiplications, and final exps.

    ``pairings`` counts *Miller loops* — the per-argument-pair work and the
    unit the paper's "2n + 2 pairings" refers to.  ``final_exps`` counts
    final exponentiations separately: a product-of-pairings evaluation
    (:meth:`~repro.crypto.groups.base.CompositeBilinearGroup.multi_pair`)
    shares **one** final exponentiation across all its Miller loops, so the
    two classes no longer move in lockstep.
    """

    pairings: int = 0
    exponentiations: int = 0
    multiplications: int = 0
    final_exps: int = 0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.pairings + other.pairings,
            self.exponentiations + other.exponentiations,
            self.multiplications + other.multiplications,
            self.final_exps + other.final_exps,
        )

    def __mul__(self, k: int) -> "OpCount":
        return OpCount(
            self.pairings * k,
            self.exponentiations * k,
            self.multiplications * k,
            self.final_exps * k,
        )

    __rmul__ = __mul__


def ssw_setup_ops(n: int) -> OpCount:
    """``Setup``: 4n secret bases, one exponentiation each."""
    return OpCount(exponentiations=4 * n)


def ssw_encrypt_ops(n: int) -> OpCount:
    """``Enc``: C and C0 cost 2 exps + 1 mult each; each coordinate costs
    9 exps (5 for C1i with its fresh payload, 4 for C2i reusing it) and
    6 mults."""
    return OpCount(exponentiations=4 + 9 * n, multiplications=2 + 6 * n)


def ssw_gen_token_ops(n: int) -> OpCount:
    """``GenToken``: K and K0 accumulate 2n exps each (plus their masks);
    each coordinate pair K1i/K2i costs 7 exps and 4 mults."""
    return OpCount(exponentiations=2 + 11 * n, multiplications=8 * n)


def ssw_query_ops(n: int) -> OpCount:
    """``Query``: the 2n + 2 Miller loops the paper counts as pairings,
    the product accumulation, and **one** shared final exponentiation —
    the query tests only the product against the identity, so the 2n + 2
    per-pairing final exponentiations collapse into a single one."""
    return OpCount(
        pairings=2 * n + 2, multiplications=2 * n + 1, final_exps=1
    )


# ----------------------------------------------------------------------
# CRSE-II (α = w + 2 per sub-token)
# ----------------------------------------------------------------------
def crse2_encrypt_ops(w: int = 2) -> OpCount:
    """One SSW encryption at ``α = w + 2`` — radius-independent (Fig. 10)."""
    return ssw_encrypt_ops(w + 2)


def crse2_gen_token_ops(m: int, w: int = 2) -> OpCount:
    """``m`` SSW tokens at ``α = w + 2`` — the O(R²) growth of Fig. 11."""
    return m * ssw_gen_token_ops(w + 2)


def crse2_search_record_ops(evaluated: int, w: int = 2) -> OpCount:
    """*evaluated* sub-token queries: ``m`` worst case, ``~m/2`` average
    for matching records (Fig. 12 reports the average case)."""
    return evaluated * ssw_query_ops(w + 2)


# ----------------------------------------------------------------------
# CRSE-I (one SSW instance at the product length α)
# ----------------------------------------------------------------------
def crse1_encrypt_ops(alpha: int) -> OpCount:
    """One SSW encryption at the product vector length (Table I, Enc)."""
    return ssw_encrypt_ops(alpha)


def crse1_gen_token_ops(alpha: int) -> OpCount:
    """One SSW token at the product vector length (Table I, GenToken)."""
    return ssw_gen_token_ops(alpha)


def crse1_search_record_ops(alpha: int) -> OpCount:
    """One SSW query at the product vector length (Table I, Search)."""
    return ssw_query_ops(alpha)
