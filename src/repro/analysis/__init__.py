"""Analysis utilities: operation counting, paper-style reporting, and the
``reprolint`` static analyzer (:mod:`repro.analysis.staticcheck`)."""

from repro.analysis.fit import FitResult, linear_fit, power_fit
from repro.analysis.growth import (
    LANDAU_RAMANUJAN,
    crse1_max_feasible_radius,
    crse2_cost_curve,
    landau_ramanujan_estimate,
    predicted_m,
)
from repro.analysis.opcount import (
    OpCount,
    crse1_encrypt_ops,
    crse1_gen_token_ops,
    crse1_search_record_ops,
    crse2_encrypt_ops,
    crse2_gen_token_ops,
    crse2_search_record_ops,
    ssw_encrypt_ops,
    ssw_gen_token_ops,
    ssw_query_ops,
    ssw_setup_ops,
)
from repro.analysis.report import Series, TextTable, format_series_block
from repro.analysis.staticcheck import Finding, lint_paths

__all__ = [
    "LANDAU_RAMANUJAN",
    "Finding",
    "FitResult",
    "OpCount",
    "Series",
    "TextTable",
    "crse1_encrypt_ops",
    "crse1_gen_token_ops",
    "crse1_search_record_ops",
    "crse2_encrypt_ops",
    "crse2_gen_token_ops",
    "crse2_search_record_ops",
    "crse1_max_feasible_radius",
    "crse2_cost_curve",
    "format_series_block",
    "landau_ramanujan_estimate",
    "linear_fit",
    "lint_paths",
    "power_fit",
    "predicted_m",
    "ssw_encrypt_ops",
    "ssw_gen_token_ops",
    "ssw_query_ops",
    "ssw_setup_ops",
]
