"""Command-line interface: ``python -m repro <command>``.

A file-based workflow around the library, mirroring the paper's three-party
deployment for a user driving it from a shell:

* ``keygen``   — the data owner creates a CRSE-II key (JSON blob on disk);
* ``encrypt``  — encrypt a CSV of points into an uploadable records file;
* ``token``    — tokenize a circular query;
* ``search``   — the server side: scan a records file with a token;
* ``tables``   — print the paper's deterministic anchors (m values, sizes);
* ``calibrate``— time the group backends on this machine;
* ``demo``     — a self-contained end-to-end run;
* ``lint``     — run ``reprolint``, the crypto-aware static analyzer
  (:mod:`repro.analysis.staticcheck`);
* ``serve``    — run the networked query service (:mod:`repro.service`)
  over an encrypted records file, optionally durable via ``--data-dir``;
* ``coordinate`` — run the distributed front-end
  (:mod:`repro.service.coordinator`) over ``--shard host:port`` backends;
  it holds no key material, only the partition map;
* ``query``    — tokenize a circle client-side and search a running
  service over TCP (and/or upload a records file with ``--upload``);
  ``--via-coordinator`` first verifies the endpoint really is a
  coordinator and reports per-shard health;
* ``store``    — offline operations on a ``--data-dir`` record store:
  ``verify`` (read-only integrity check), ``compact`` (drop tombstoned
  records), ``stats`` (snapshot counters);
* ``integrity`` — verifiable-search operations: ``audit`` re-verifies a
  durable store's record tags against the owner's key and checks the
  manifest's accumulator checkpoint (``repro query --verify`` is the
  online counterpart).

Search only needs public parameters, but for CLI simplicity it reads the
key file and uses the public part — a real server would receive the scheme
parameters out of band and never the key.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

from repro.cloud.codec import decode_ciphertext, decode_token, encode_ciphertext, encode_token
from repro.cloud.costmodel import PAPER_EC2_MODEL, measure_calibration
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2, provision_group
from repro.core.split import naive_alpha, optimized_alpha
from repro.crypto.keystore import load_crse2_key, save_crse2_key
from repro.crypto.serialize import ElementSizeModel
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Circular range search on encrypted spatial data "
        "(ICDCS 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    keygen = sub.add_parser("keygen", help="generate a CRSE-II key")
    keygen.add_argument("--size", type=int, default=1024, help="dimension size T")
    keygen.add_argument("--dims", type=int, default=2, help="dimensions w")
    keygen.add_argument(
        "--backend", choices=("fast", "pairing"), default="fast"
    )
    keygen.add_argument("--seed", type=int, default=None)
    keygen.add_argument("--out", type=Path, required=True)

    encrypt = sub.add_parser("encrypt", help="encrypt a CSV of points")
    encrypt.add_argument("--key", type=Path, required=True)
    encrypt.add_argument(
        "--points", type=Path, required=True, help="CSV: one 'x,y' per line"
    )
    encrypt.add_argument("--seed", type=int, default=None)
    encrypt.add_argument("--out", type=Path, required=True)

    token = sub.add_parser("token", help="tokenize a circular query")
    token.add_argument("--key", type=Path, required=True)
    token.add_argument(
        "--center", required=True, help="query center, e.g. '100,200'"
    )
    token.add_argument("--radius", type=int, required=True)
    token.add_argument(
        "--hide-to", type=int, default=None, help="dummy-pad to K sub-tokens"
    )
    token.add_argument("--seed", type=int, default=None)
    token.add_argument("--out", type=Path, required=True)

    search = sub.add_parser("search", help="scan records with a token")
    search.add_argument("--key", type=Path, required=True)
    search.add_argument("--records", type=Path, required=True)
    search.add_argument("--token", type=Path, required=True)

    sub.add_parser("tables", help="print the paper's deterministic anchors")

    calibrate = sub.add_parser("calibrate", help="time the backends")
    calibrate.add_argument(
        "--backend", choices=("fast", "pairing", "both"), default="both"
    )

    demo = sub.add_parser("demo", help="self-contained end-to-end run")
    demo.add_argument("--seed", type=int, default=7)

    lint = sub.add_parser(
        "lint", help="run the reprolint crypto-aware static analyzer"
    )
    lint.add_argument(
        "paths", nargs="*", type=Path, help="files/dirs (default: src/repro)"
    )
    lint.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human"
    )
    lint.add_argument("--baseline", type=Path, default=None)
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--write-baseline", action="store_true")
    lint.add_argument("--select", default=None, metavar="RULES")
    lint.add_argument("--root", type=Path, default=None)
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--flow", action="store_true",
        help="also run the project-wide taint/concurrency tier "
        "(CRS008-CRS011)",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries",
    )

    serve = sub.add_parser(
        "serve", help="run the networked query service (TCP)"
    )
    serve.add_argument("--key", type=Path, required=True)
    serve.add_argument(
        "--records", type=Path, default=None,
        help="records file from 'repro encrypt' to preload",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--port-file", type=Path, default=None,
        help="write the bound port here once listening",
    )
    serve.add_argument("--workers", type=int, default=None,
                       help="search worker processes (default: CPU count)")
    serve.add_argument("--max-pending", type=int, default=32)
    serve.add_argument("--default-deadline-ms", type=float, default=None)
    serve.add_argument(
        "--data-dir", type=Path, default=None,
        help="durable record store directory (created if absent); uploads "
        "and deletes are logged here and replayed on restart",
    )

    coordinate = sub.add_parser(
        "coordinate",
        help="run the distributed front-end over backend shards",
    )
    coordinate.add_argument(
        "--shard", action="append", required=True, metavar="HOST:PORT",
        help="backend shard address (repeat for each shard)",
    )
    coordinate.add_argument("--host", default="127.0.0.1")
    coordinate.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    coordinate.add_argument(
        "--port-file", type=Path, default=None,
        help="write the bound port here once listening",
    )
    coordinate.add_argument("--max-pending", type=int, default=32)
    coordinate.add_argument("--default-deadline-ms", type=float, default=None)
    coordinate.add_argument(
        "--shard-timeout-s", type=float, default=30.0,
        help="socket timeout for each backend call",
    )
    coordinate.add_argument(
        "--replication", type=int, default=1, metavar="R",
        help="copies of every partition; consecutive groups of R shards "
        "from the --shard list form one partition's replica set, so the "
        "shard count must be a multiple of R",
    )
    coordinate.add_argument(
        "--repair-interval-s", type=float, default=5.0, metavar="SECONDS",
        help="re-replicate dirty replicas every SECONDS while serving "
        "(0 disables background repair)",
    )
    coordinate.add_argument(
        "--data-dir", type=Path, default=None,
        help="directory for the persisted partition map (created if "
        "absent); a restarted coordinator reloads it and migrates records "
        "off shards that left the configured set",
    )
    coordinate.add_argument(
        "--rebalance", action="store_true",
        help="even out per-shard record counts before serving",
    )

    query = sub.add_parser(
        "query", help="search a running service over TCP"
    )
    query.add_argument("--key", type=Path, required=True)
    query.add_argument("--center", default=None,
                       help="query center, e.g. '100,200'")
    query.add_argument("--radius", type=int, default=None)
    query.add_argument(
        "--upload", type=Path, default=None,
        help="records file from 'repro encrypt' to upload before querying",
    )
    query.add_argument("--hide-to", type=int, default=None)
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--deadline-ms", type=float, default=None)
    query.add_argument("--timeout-s", type=float, default=30.0)
    query.add_argument("--seed", type=int, default=None)
    query.add_argument(
        "--stats", action="store_true",
        help="also print the server's metrics snapshot",
    )
    query.add_argument(
        "--via-coordinator", action="store_true",
        help="require the endpoint to be a coordinator and report "
        "per-shard health before querying",
    )
    query.add_argument(
        "--verify", action="store_true",
        help="demand per-record tags and a completeness proof with the "
        "reply and verify them client-side; any tamper exits non-zero",
    )
    query.add_argument(
        "--integrity-state", type=Path, default=None, metavar="PATH",
        help="JSON file tracking the client's expected accumulator state "
        "across invocations; updated on upload, checked on --verify",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="replay a generated query stream against a running service "
        "and report sustained QPS and latency percentiles",
    )
    loadtest.add_argument("--key", type=Path, required=True)
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, required=True)
    loadtest.add_argument(
        "--queries", type=int, default=100,
        help="number of queries in the generated stream (default 100)",
    )
    loadtest.add_argument(
        "--mode", choices=("closed", "open", "sweep"), default="closed",
        help="closed: fixed concurrency; open: fixed arrival rate; "
        "sweep: closed loop at increasing concurrency levels",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop worker count (default 8)",
    )
    loadtest.add_argument(
        "--rate", type=float, default=100.0,
        help="open-loop arrival rate in queries/s (default 100)",
    )
    loadtest.add_argument(
        "--batch", type=int, default=1,
        help="queries per search_batch round trip in closed mode "
        "(default 1: plain multiplexed searches)",
    )
    loadtest.add_argument(
        "--levels", default="1,2,4,8,16",
        help="comma-separated concurrency levels for --mode sweep",
    )
    loadtest.add_argument(
        "--upload", type=Path, default=None,
        help="records file from 'repro encrypt' to upload before the run",
    )
    loadtest.add_argument("--max-radius", type=int, default=4)
    loadtest.add_argument("--hide-to", type=int, default=None)
    loadtest.add_argument("--deadline-ms", type=float, default=None)
    loadtest.add_argument(
        "--max-in-flight", type=int, default=64,
        help="client-side cap on outstanding requests (default 64)",
    )
    loadtest.add_argument("--timeout-s", type=float, default=30.0)
    loadtest.add_argument("--seed", type=int, default=None)

    integrity = sub.add_parser(
        "integrity", help="verifiable-search operations"
    )
    integrity_sub = integrity.add_subparsers(
        dest="integrity_command", required=True
    )
    integrity_audit = integrity_sub.add_parser(
        "audit",
        help="offline re-verification of a durable store's record tags "
        "and accumulator checkpoint",
    )
    integrity_audit.add_argument("--key", type=Path, required=True)
    integrity_audit.add_argument("--data-dir", type=Path, required=True)
    integrity_audit.add_argument(
        "--format", choices=("human", "json"), default="human"
    )

    store = sub.add_parser(
        "store", help="offline operations on a durable record store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify", help="read-only integrity check of a store directory"
    )
    store_verify.add_argument("--data-dir", type=Path, required=True)
    store_verify.add_argument(
        "--format", choices=("human", "json"), default="human"
    )
    store_compact = store_sub.add_parser(
        "compact", help="rewrite live records, dropping tombstoned ones"
    )
    store_compact.add_argument("--data-dir", type=Path, required=True)
    store_stats = store_sub.add_parser(
        "stats", help="print a store's snapshot counters as JSON"
    )
    store_stats.add_argument("--data-dir", type=Path, required=True)
    return parser


def _rng(seed: int | None) -> random.Random:
    return random.Random(seed) if seed is not None else random.Random()


def _parse_point(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.strip().split(","))


def _cmd_keygen(args, out) -> int:
    rng = _rng(args.seed)
    space = DataSpace(w=args.dims, t=args.size)
    scheme = CRSE2Scheme(space, group_for_crse2(space, args.backend, rng))
    key = scheme.gen_key(rng)
    args.out.write_bytes(save_crse2_key(scheme, key))
    print(
        f"wrote CRSE-II key for Δ^{args.dims}_{args.size} "
        f"({args.backend} backend) to {args.out}",
        file=out,
    )
    return 0


def _cmd_encrypt(args, out) -> int:
    scheme, key = load_crse2_key(args.key.read_bytes())
    rng = _rng(args.seed)
    lines = [
        line for line in args.points.read_text().splitlines() if line.strip()
    ]
    with args.out.open("w") as sink:
        for identifier, line in enumerate(lines):
            point = _parse_point(line)
            blob = encode_ciphertext(
                scheme, scheme.encrypt(key, point, rng)
            )
            sink.write(f"{identifier}:{blob.hex()}\n")
    print(f"encrypted {len(lines)} records to {args.out}", file=out)
    return 0


def _cmd_token(args, out) -> int:
    scheme, key = load_crse2_key(args.key.read_bytes())
    rng = _rng(args.seed)
    circle = Circle.from_radius(_parse_point(args.center), args.radius)
    token = scheme.gen_token(key, circle, rng, hide_radius_to=args.hide_to)
    blob = encode_token(scheme, token)
    args.out.write_bytes(blob)
    print(
        f"wrote token ({token.num_sub_tokens} sub-tokens, "
        f"{len(blob)} bytes) to {args.out}",
        file=out,
    )
    return 0


def _cmd_search(args, out) -> int:
    scheme, _key = load_crse2_key(args.key.read_bytes())
    token = decode_token(scheme, args.token.read_bytes())
    matches = []
    for line in args.records.read_text().splitlines():
        if not line.strip():
            continue
        identifier, hex_blob = line.split(":", 1)
        ciphertext = decode_ciphertext(scheme, bytes.fromhex(hex_blob))
        if scheme.matches(token, ciphertext):
            matches.append(int(identifier))
    print(f"matches: {matches}", file=out)
    return 0


def _cmd_tables(args, out) -> int:
    model = ElementSizeModel.paper()
    print("m(R) for w = 2 (Fig. 9 anchors):", file=out)
    for radius in (1, 2, 3, 5, 10, 20, 50):
        print(f"  R = {radius:>2}: m = {num_concentric_circles(radius * radius)}", file=out)
    print("\nCRSE-I object sizes at 512-bit field (Table II):", file=out)
    for radius in (1, 2, 3):
        m = num_concentric_circles(radius * radius)
        naive_kb = model.ssw_object_bytes(naive_alpha(2, m)) / 1000
        opt_kb = model.ssw_object_bytes(optimized_alpha(2, m)) / 1000
        print(
            f"  R = {radius}: naive {naive_kb:.2f} KB, optimized {opt_kb:.2f} KB",
            file=out,
        )
    print(
        f"\nCRSE-II: ciphertext {model.crse2_ciphertext_bytes()} B (Fig. 13); "
        f"token at R = 10: {model.crse2_token_bytes(44) / 1000:.2f} KB (Fig. 14)",
        file=out,
    )
    return 0


def _cmd_calibrate(args, out) -> int:
    rng = random.Random(0xCA11)
    backends = (
        ["fast", "pairing"] if args.backend == "both" else [args.backend]
    )
    print(
        f"paper reference: {PAPER_EC2_MODEL.pairing_ms} ms/pairing "
        "(PBC on EC2 medium)",
        file=out,
    )
    for backend in backends:
        group = provision_group(10**6, backend, rng, noise_bits=16)
        model = measure_calibration(group, repetitions=10)
        print(
            f"{model.label}: pairing {model.pairing_ms:.3f} ms, "
            f"exp {model.exponentiation_ms:.3f} ms, "
            f"mult {model.multiplication_ms:.4f} ms",
            file=out,
        )
    return 0


def _cmd_demo(args, out) -> int:
    from repro.cloud.deployment import CloudDeployment

    rng = _rng(args.seed)
    space = DataSpace(w=2, t=256)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    cloud = CloudDeployment.create(scheme, rng=rng)
    points = [(50, 50), (52, 51), (200, 10)]
    cloud.outsource(points)
    hits = cloud.query_points(Circle.from_radius((51, 51), 5))
    print(f"outsourced {points}; query circle (51,51) R=5 → {sorted(hits)}", file=out)
    return 0


def _read_records_file(path: Path) -> list[tuple[int, bytes]]:
    """Parse the ``identifier:hex`` lines written by ``repro encrypt``."""
    records = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        identifier, hex_blob = line.split(":", 1)
        records.append((int(identifier), bytes.fromhex(hex_blob)))
    return records


def _cmd_serve(args, out) -> int:
    import asyncio
    import os

    from repro.cloud.messages import UploadDataset, UploadRecord
    from repro.integrity import TagKeys, membership_tag, record_tag
    from repro.service import ServiceConfig, ServiceServer
    from repro.service.schemeio import scheme_header

    scheme, key = load_crse2_key(args.key.read_bytes())
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=workers,
        max_pending=args.max_pending,
        default_deadline_ms=args.default_deadline_ms,
    )
    store = None
    if args.data_dir is not None:
        from repro.storage import RecordStore

        store = RecordStore.open_or_create(
            args.data_dir, scheme_header(scheme)
        )
    server = ServiceServer(scheme, config, store=store)
    if store is not None:
        print(
            f"replayed {store.record_count} records from {args.data_dir}",
            file=out,
        )
    if args.records is not None:
        if store is not None and store.record_count > 0:
            # The store is authoritative once populated: silently merging
            # a records file into replayed state invites duplicate-id
            # surprises, so seed only an empty store.
            print(
                f"store is non-empty; ignoring --records {args.records}",
                file=out,
            )
        else:
            # The serve CLI already holds the owner's key file, so the
            # preload path mints the same integrity tags an owner upload
            # would — keeping --verify queries answerable.
            tag_keys = TagKeys.derive(scheme, key)
            records = _read_records_file(args.records)
            server.ingest(
                UploadDataset(
                    records=tuple(
                        UploadRecord(
                            identifier=i,
                            payload=blob,
                            tag=record_tag(tag_keys, i, blob),
                            mtag=membership_tag(tag_keys, i),
                        )
                        for i, blob in records
                    )
                )
            )
            print(f"preloaded {len(records)} records", file=out)

    async def main() -> None:
        port = await server.start()
        if args.port_file is not None:
            # Keep file IO off the loop even here: the server is already
            # accepting connections by the time the port file appears.
            await asyncio.to_thread(args.port_file.write_text, str(port))
        print(
            f"serving on {args.host}:{port} (workers={workers}, "
            f"max_pending={args.max_pending})",
            file=out, flush=True,
        )
        await server.run()

    asyncio.run(main())
    print("drained, bye", file=out, flush=True)
    return 0


def _cmd_coordinate(args, out) -> int:
    import asyncio

    from repro.service import Coordinator, CoordinatorConfig

    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        default_deadline_ms=args.default_deadline_ms,
        shard_timeout_s=args.shard_timeout_s,
        replication=args.replication,
        repair_interval_s=args.repair_interval_s or None,
    )
    coordinator = Coordinator(args.shard, config, data_dir=args.data_dir)
    if coordinator.needs_reconcile:
        moved = coordinator.reconcile_membership()
        print(
            f"migrated {sum(moved.values())} record(s) off departed "
            f"partition(s): {', '.join(sorted(moved))}",
            file=out,
        )
    repaired = coordinator.repair()
    if repaired:
        print(
            f"re-replicated {sum(repaired.values())} record(s) onto "
            f"{len(repaired)} stale replica(s)",
            file=out,
        )
    if args.rebalance:
        moved = coordinator.rebalance()
        print(f"rebalanced {moved} record(s)", file=out)

    async def main() -> None:
        port = await coordinator.start()
        if args.port_file is not None:
            await asyncio.to_thread(args.port_file.write_text, str(port))
        print(
            f"coordinating {len(coordinator.shards)} shard(s) on "
            f"{args.host}:{port} "
            f"(replication x{coordinator.replication}, "
            f"{coordinator.partition_map.record_count} records mapped)",
            file=out, flush=True,
        )
        await coordinator.run()

    asyncio.run(main())
    print("drained, bye", file=out, flush=True)
    return 0


def _cmd_query(args, out) -> int:
    import json as _json

    from repro.errors import ParameterError, ShardUnavailableError
    from repro.integrity import (
        IntegrityState,
        ResultVerifier,
        TagKeys,
        membership_tag,
        record_tag,
    )
    from repro.service import ServiceClient

    wants_search = args.center is not None or args.radius is not None
    if wants_search and (args.center is None or args.radius is None):
        raise ParameterError("--center and --radius go together")
    if not wants_search and args.upload is None:
        raise ParameterError(
            "nothing to do: give --center/--radius, --upload, or both"
        )
    if args.verify and not wants_search:
        raise ParameterError("--verify needs --center/--radius")

    scheme, key = load_crse2_key(args.key.read_bytes())
    tag_keys = TagKeys.derive(scheme, key)
    state = None
    if args.integrity_state is not None and args.integrity_state.exists():
        state = IntegrityState.from_dict(
            _json.loads(args.integrity_state.read_text("utf-8"))
        )
    rng = _rng(args.seed)
    client = ServiceClient(args.host, args.port, timeout_s=args.timeout_s)
    if args.via_coordinator:
        health = client.health()
        if not health.get("coordinator"):
            raise ParameterError(
                f"{args.host}:{args.port} is not a coordinator "
                "(plain servers do not advertise the shards capability)"
            )
        print(
            f"coordinator {health.get('status')}: "
            f"{health.get('shards_healthy')}/{health.get('shards_total')} "
            f"shard(s) healthy, {health.get('records')} records",
            file=out,
        )
    if args.upload is not None:
        from repro.cloud.messages import UploadDataset, UploadRecord

        records = _read_records_file(args.upload)
        stored = client.upload(
            UploadDataset(
                records=tuple(
                    UploadRecord(
                        identifier=i,
                        payload=blob,
                        tag=record_tag(tag_keys, i, blob),
                        mtag=membership_tag(tag_keys, i),
                    )
                    for i, blob in records
                )
            )
        )
        print(
            f"uploaded {len(records)} records ({stored} now stored)",
            file=out,
        )
        if args.integrity_state is not None:
            if state is None:
                state = IntegrityState()
            state.note_upload(tag_keys, (i for i, _ in records))
            args.integrity_state.write_text(
                _json.dumps(state.to_dict()), "utf-8"
            )
    if wants_search:
        circle = Circle.from_radius(_parse_point(args.center), args.radius)
        token = scheme.gen_token(
            key, circle, rng, hide_radius_to=args.hide_to
        )
        token_payload = encode_token(scheme, token)
        try:
            if args.verify:
                response, stats, section = client.search_verified(
                    token_payload, deadline_ms=args.deadline_ms
                )
            else:
                response, stats = client.search(
                    token_payload, deadline_ms=args.deadline_ms
                )
        except ShardUnavailableError as exc:
            # Degraded, not silent: show what the reachable shards could
            # attest to, then fail with the typed error.
            print(
                f"partial matches: {sorted(exc.partial_identifiers)} "
                f"(from {sum(1 for r in exc.shards if r.get('ok'))} of "
                f"{len(exc.shards)} shards)",
                file=out, flush=True,
            )
            raise
        print(f"matches: {sorted(response.identifiers)}", file=out)
        if args.verify:
            report = ResultVerifier(tag_keys).verify(
                token_payload, response.identifiers, section, state=state
            )
            line = (
                f"verified: {report.records} match(es) attested across "
                f"{report.shards} shard proof(s)"
            )
            if report.state_checked:
                line += "; aggregate state checked"
            print(line, file=out)
        if stats:
            print(
                f"scanned {stats.get('records_scanned')} records in "
                f"{stats.get('elapsed_ms')} ms across "
                f"{len(stats.get('partitions', []))} partition(s)",
                file=out,
            )
    if args.stats:
        print(_json.dumps(client.stats(), indent=2), file=out)
    return 0


def _cmd_store(args, out) -> int:
    import json as _json

    from repro.storage import RecordStore, verify_store

    if args.store_command == "verify":
        report = verify_store(args.data_dir)
        if args.format == "json":
            print(_json.dumps(report, indent=2), file=out)
        else:
            for seg in report["segments"]:
                line = (
                    f"  {seg['name']}: {seg['status']} "
                    f"({seg['frames']} frames, {seg['bytes']} bytes)"
                )
                if seg["detail"]:
                    line += f" — {seg['detail']}"
                print(line, file=out)
            for warning in report["warnings"]:
                print(f"warning: {warning}", file=out)
            for error in report["errors"]:
                print(f"error: {error}", file=out)
            verdict = "clean" if report["clean"] else (
                "damaged" if report["errors"] else "recoverable"
            )
            print(f"store at {report['directory']}: {verdict}", file=out)
        return 1 if report["errors"] else 0
    if args.store_command == "compact":
        with RecordStore.open(args.data_dir) as store:
            before = store.snapshot()
            after = store.compact()
        print(
            f"compacted {args.data_dir}: {before.log_bytes} → "
            f"{after.log_bytes} bytes, dropped {before.dead_records} dead "
            f"record(s), {after.live_records} live",
            file=out,
        )
        return 0
    # stats: opening the store runs recovery and one full replay, which
    # is exactly what the counters describe.
    with RecordStore.open(args.data_dir) as store:
        print(_json.dumps(store.snapshot().to_dict(), indent=2), file=out)
    return 0


def _cmd_integrity(args, out) -> int:
    import hmac as _hmac
    import json as _json

    from repro.integrity import (
        EMPTY_ROOT,
        TagKeys,
        membership_tag,
        payload_digest,
        verify_record_tag,
        xor_fold,
    )
    from repro.storage import RecordStore

    scheme, key = load_crse2_key(args.key.read_bytes())
    tag_keys = TagKeys.derive(scheme, key)
    with RecordStore.open(args.data_dir) as store:
        checkpoint = store.integrity_checkpoint
        rows = list(store.scan_tagged())

    untagged: list[int] = []
    bad: list[int] = []
    root = EMPTY_ROOT
    for identifier, payload, _content, tag, mtag in rows:
        if not tag or not mtag:
            untagged.append(identifier)
            continue
        ok = verify_record_tag(
            tag_keys, identifier, payload_digest(payload), tag
        ) and _hmac.compare_digest(mtag, membership_tag(tag_keys, identifier))
        if not ok:
            bad.append(identifier)
            continue
        root = xor_fold((root, mtag))

    checkpoint_match = None
    if checkpoint is not None:
        checkpoint_match = (
            not untagged
            and not bad
            and checkpoint.get("root") == root.hex()
            and checkpoint.get("count") == len(rows)
        )
    report = {
        "directory": str(args.data_dir),
        "records": len(rows),
        "tagged": len(rows) - len(untagged),
        "untagged": sorted(untagged),
        "bad": sorted(bad),
        "root": root.hex(),
        "checkpoint": checkpoint,
        "checkpoint_match": checkpoint_match,
        "clean": not untagged and not bad and checkpoint_match is not False,
    }
    if args.format == "json":
        print(_json.dumps(report, indent=2), file=out)
    else:
        print(
            f"audited {report['records']} record(s): "
            f"{report['tagged']} tagged, {len(bad)} bad tag(s), "
            f"{len(untagged)} untagged",
            file=out,
        )
        for identifier in report["bad"]:
            print(
                f"error: record {identifier} fails tag verification "
                "(altered ciphertext or forged tag)",
                file=out,
            )
        if checkpoint is None:
            print("no accumulator checkpoint in the manifest", file=out)
        else:
            verdict = "matches" if checkpoint_match else "DOES NOT match"
            print(
                f"accumulator checkpoint {verdict} the recomputed root",
                file=out,
            )
        print(
            f"store at {args.data_dir}: "
            f"{'clean' if report['clean'] else 'tampered'}",
            file=out,
        )
    return 0 if report["clean"] else 1


def _cmd_lint(args, out) -> int:
    from repro.analysis.staticcheck.cli import _print_rule_table, run_lint

    if args.list_rules:
        _print_rule_table(out)
        return 0
    return run_lint(
        args.paths,
        output_format=args.format,
        baseline=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline_file=args.write_baseline,
        select=args.select,
        root=args.root,
        flow=args.flow,
        strict=args.strict,
        out=out,
    )


def _cmd_loadtest(args, out) -> int:
    import asyncio

    from repro.datasets.workload import generate_query_stream
    from repro.errors import ParameterError
    from repro.loadgen import (
        render_report,
        render_sweep,
        run_closed_loop,
        run_open_loop,
        saturation_sweep,
        tokens_for_queries,
    )
    from repro.service import AsyncServiceClient, ServiceClient

    if args.queries < 1:
        raise ParameterError("--queries must be at least 1")
    scheme, key = load_crse2_key(args.key.read_bytes())
    rng = _rng(args.seed)
    queries = generate_query_stream(
        scheme.space, args.queries, rng, max_radius=args.max_radius
    )
    payloads = tokens_for_queries(
        scheme, key, queries, rng, hide_radius_to=args.hide_to
    )
    if args.upload is not None:
        from repro.cloud.messages import UploadDataset, UploadRecord

        records = _read_records_file(args.upload)
        with ServiceClient(
            args.host, args.port, timeout_s=args.timeout_s
        ) as uploader:
            stored = uploader.upload(
                UploadDataset(
                    records=tuple(
                        UploadRecord(identifier=i, payload=blob)
                        for i, blob in records
                    )
                )
            )
        print(
            f"uploaded {len(records)} records ({stored} now stored)",
            file=out,
        )
    print(
        f"loadtest: {len(payloads)} queries against "
        f"{args.host}:{args.port} (mode={args.mode})",
        file=out,
    )

    async def main():
        async with AsyncServiceClient(
            args.host,
            args.port,
            timeout_s=args.timeout_s,
            max_in_flight=args.max_in_flight,
        ) as client:
            if args.mode == "sweep":
                levels = [
                    int(level) for level in args.levels.split(",") if level
                ]
                return await saturation_sweep(
                    client,
                    payloads,
                    concurrency_levels=levels,
                    deadline_ms=args.deadline_ms,
                    batch=args.batch,
                )
            if args.mode == "open":
                return await run_open_loop(
                    client,
                    payloads,
                    rate_qps=args.rate,
                    deadline_ms=args.deadline_ms,
                )
            return await run_closed_loop(
                client,
                payloads,
                concurrency=args.concurrency,
                deadline_ms=args.deadline_ms,
                batch=args.batch,
            )

    outcome = asyncio.run(main())
    if args.mode == "sweep":
        print(render_sweep(outcome), file=out)
        return 0 if all(r.ok == r.requested for r in outcome) else 1
    print(render_report(outcome), file=out)
    return 0 if outcome.ok == outcome.requested else 1


_COMMANDS = {
    "keygen": _cmd_keygen,
    "encrypt": _cmd_encrypt,
    "token": _cmd_token,
    "search": _cmd_search,
    "tables": _cmd_tables,
    "calibrate": _cmd_calibrate,
    "demo": _cmd_demo,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "coordinate": _cmd_coordinate,
    "query": _cmd_query,
    "loadtest": _cmd_loadtest,
    "store": _cmd_store,
    "integrity": _cmd_integrity,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
