"""Trace-driven workloads: generate, replay, and verify mixed operations.

A deployment is more than one upload and one query: users add records,
search, and delete over time.  This module provides

* an operation vocabulary (:class:`UploadOp`, :class:`QueryOp`,
  :class:`DeleteOp`),
* a generator producing randomized but reproducible mixed traces, and
* :func:`replay` — drives a :class:`repro.cloud.CloudDeployment` through a
  trace while maintaining a **plaintext shadow** of the server state and
  checking every query's encrypted results against ground truth.

Replay doubles as a randomized integration test (the trace explores
interleavings no hand-written test does) and as the workload engine for
throughput benchmarks.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.cloud.deployment import CloudDeployment
from repro.core.geometry import Circle, point_in_circle
from repro.datasets.synthetic import uniform_points
from repro.errors import ParameterError

__all__ = [
    "UploadOp",
    "QueryOp",
    "DeleteOp",
    "Operation",
    "generate_trace",
    "generate_query_stream",
    "replay",
    "ReplayReport",
]


@dataclass(frozen=True)
class UploadOp:
    """Add records (points plus optional payloads)."""

    points: tuple[tuple[int, ...], ...]
    contents: tuple[bytes, ...] | None = None


@dataclass(frozen=True)
class QueryOp:
    """Run one circular range query (optionally radius-hidden)."""

    circle: Circle
    hide_radius_to: int | None = None


@dataclass(frozen=True)
class DeleteOp:
    """Remove records by identifier index into the *live* id list.

    Indices are resolved against the identifiers alive at replay time, so
    generated traces stay valid regardless of interleaving.
    """

    live_indices: tuple[int, ...]


Operation = Union[UploadOp, QueryOp, DeleteOp]


@dataclass
class ReplayReport:
    """What a replay did and observed."""

    uploads: int = 0
    records_added: int = 0
    queries: int = 0
    deletes: int = 0
    records_deleted: int = 0
    total_matches: int = 0
    verified_queries: int = 0
    elapsed_s: float = 0.0
    mismatches: list[str] = field(default_factory=list)


def _random_query(space, rng: random.Random, max_radius: int) -> QueryOp:
    """One random in-bounds query (circle fully inside the data space)."""
    radius = rng.randint(0, max_radius)
    lo = min(radius, space.t - 1 - radius)
    center = tuple(
        rng.randint(lo, max(space.t - 1 - radius, lo))
        for _ in range(space.w)
    )
    return QueryOp(circle=Circle.from_radius(center, radius))


def generate_query_stream(
    space,
    queries: int,
    rng: random.Random,
    max_radius: int = 4,
) -> list[QueryOp]:
    """A reproducible pure-query stream for load generation.

    Same circle distribution as :func:`generate_trace`'s query branch,
    without the interleaved uploads and deletes — the load harness
    uploads once up front and then measures sustained query traffic.

    Raises:
        ParameterError: On a non-positive query count.
    """
    if queries < 1:
        raise ParameterError("query stream needs at least one query")
    return [_random_query(space, rng, max_radius) for _ in range(queries)]


def generate_trace(
    space,
    operations: int,
    rng: random.Random,
    max_radius: int = 4,
    batch: int = 5,
) -> list[Operation]:
    """A reproducible mixed trace (≈50% queries, 30% uploads, 20% deletes).

    The trace always starts with an upload so queries have something to
    scan.

    Raises:
        ParameterError: On a non-positive operation count.
    """
    if operations < 1:
        raise ParameterError("trace needs at least one operation")
    trace: list[Operation] = [
        UploadOp(points=tuple(uniform_points(space, batch, rng)))
    ]
    for _ in range(operations - 1):
        roll = rng.random()
        if roll < 0.5:
            trace.append(_random_query(space, rng, max_radius))
        elif roll < 0.8:
            count = rng.randint(1, batch)
            trace.append(
                UploadOp(points=tuple(uniform_points(space, count, rng)))
            )
        else:
            picks = tuple(
                sorted({rng.randrange(100) for _ in range(rng.randint(1, 3))})
            )
            trace.append(DeleteOp(live_indices=picks))
    return trace


def replay(
    deployment: CloudDeployment,
    trace: Sequence[Operation],
    verify: bool = True,
) -> ReplayReport:
    """Drive *deployment* through *trace*, verifying against a shadow.

    Args:
        deployment: A freshly created deployment (its server may already
            hold records; the shadow starts from the owner's directory).
        trace: The operations to apply, in order.
        verify: Check every query's identifiers against the plaintext
            shadow (mismatches are recorded, then raised at the end).

    Raises:
        AssertionError: If verification found any mismatch.
    """
    report = ReplayReport()
    shadow: dict[int, tuple[int, ...]] = dict(deployment.owner.directory)
    started = time.perf_counter()
    for op in trace:
        if isinstance(op, UploadOp):
            before = set(deployment.owner.directory)
            deployment.outsource(
                op.points,
                contents=list(op.contents) if op.contents else None,
            )
            for identifier in set(deployment.owner.directory) - before:
                shadow[identifier] = deployment.owner.directory[identifier]
            report.uploads += 1
            report.records_added += len(op.points)
        elif isinstance(op, QueryOp):
            response = deployment.query(
                op.circle, hide_radius_to=op.hide_radius_to
            )
            report.queries += 1
            report.total_matches += len(response.identifiers)
            if verify:
                expected = sorted(
                    identifier
                    for identifier, point in shadow.items()
                    if point_in_circle(point, op.circle)
                )
                got = sorted(response.identifiers)
                if got != expected:
                    report.mismatches.append(
                        f"query {op.circle}: got {got}, expected {expected}"
                    )
                else:
                    report.verified_queries += 1
        elif isinstance(op, DeleteOp):
            live = sorted(shadow)
            chosen = [
                live[index % len(live)] for index in op.live_indices if live
            ]
            chosen = sorted(set(chosen))
            if chosen:
                removed = deployment.delete(chosen)
                for identifier in chosen:
                    shadow.pop(identifier, None)
                report.deletes += 1
                report.records_deleted += removed
        else:  # pragma: no cover - exhaustive union
            # An op embeds plaintext query circles — name its type only.
            raise ParameterError(f"unknown operation type {type(op).__name__}")
    report.elapsed_s = time.perf_counter() - started
    if verify and report.mismatches:
        raise AssertionError(
            "replay verification failed:\n" + "\n".join(report.mismatches)
        )
    return report
