"""Workload generators: synthetic spatial data and Brightkite-style check-ins."""

from repro.datasets.brightkite import (
    CheckIn,
    checkin_to_point,
    data_space_for_digits,
    generate_checkins,
    haversine_m,
    meters_per_unit,
    radius_for_meters,
    real_world_radius_m,
    round_coordinate,
)
from repro.datasets.workload import (
    DeleteOp,
    Operation,
    QueryOp,
    ReplayReport,
    UploadOp,
    generate_trace,
    replay,
)
from repro.datasets.synthetic import (
    clustered_points,
    points_on_boundary,
    query_workload,
    random_circle,
    uniform_points,
)

__all__ = [
    "CheckIn",
    "DeleteOp",
    "Operation",
    "QueryOp",
    "ReplayReport",
    "UploadOp",
    "checkin_to_point",
    "clustered_points",
    "data_space_for_digits",
    "generate_checkins",
    "haversine_m",
    "meters_per_unit",
    "points_on_boundary",
    "query_workload",
    "radius_for_meters",
    "random_circle",
    "real_world_radius_m",
    "round_coordinate",
    "uniform_points",
    "generate_trace",
    "replay",
]
