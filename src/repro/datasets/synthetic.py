"""Synthetic spatial workloads for tests and benchmarks.

Generators for the point distributions the paper's experiments imply:
uniform points over a data space (the EC2 microbenchmarks), clustered
points (location data is heavily clustered), boundary-exact placements
(points lying exactly on given concentric circles — the adversarial case
for correctness testing), and query workloads (circles with controlled
radii and hit counts).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.geometry import Circle, DataSpace
from repro.errors import ParameterError
from repro.math.sumsquares import lattice_points_on_sphere

__all__ = [
    "uniform_points",
    "clustered_points",
    "points_on_boundary",
    "random_circle",
    "query_workload",
]


def uniform_points(
    space: DataSpace, n: int, rng: random.Random
) -> list[tuple[int, ...]]:
    """Sample *n* points uniformly from the space (with replacement)."""
    return [
        tuple(rng.randrange(space.t) for _ in range(space.w)) for _ in range(n)
    ]


def clustered_points(
    space: DataSpace,
    n: int,
    rng: random.Random,
    clusters: int = 5,
    spread: float | None = None,
) -> list[tuple[int, ...]]:
    """Sample points from Gaussian clusters with uniform centers.

    Args:
        space: The data space.
        n: Total number of points.
        rng: Randomness source.
        clusters: Number of cluster centers.
        spread: Standard deviation of each cluster; defaults to ``T/20``.

    Raises:
        ParameterError: If *clusters* is not positive.
    """
    if clusters < 1:
        raise ParameterError("need at least one cluster")
    spread = spread if spread is not None else max(space.t / 20.0, 1.0)
    centers = uniform_points(space, clusters, rng)
    points = []
    for _ in range(n):
        center = centers[rng.randrange(clusters)]
        point = tuple(
            min(space.t - 1, max(0, round(rng.gauss(c, spread))))
            for c in center
        )
        points.append(point)
    return points


def points_on_boundary(
    circle: Circle, space: DataSpace, limit: int | None = None
) -> list[tuple[int, ...]]:
    """Space points lying *exactly* on the circle's boundary.

    Useful to exercise the "inside includes the boundary" convention and
    CRSE-II's per-concentric-circle matching.
    """
    on_sphere = lattice_points_on_sphere(circle.center, circle.r_squared)
    inside = [p for p in on_sphere if space.contains_point(p)]
    return inside[:limit] if limit is not None else inside


def random_circle(
    space: DataSpace, radius: int, rng: random.Random
) -> Circle:
    """A query circle of integer *radius* with a uniform in-space center."""
    if radius < 0:
        raise ParameterError("radius must be non-negative")
    center = tuple(rng.randrange(space.t) for _ in range(space.w))
    return Circle.from_radius(center, radius)


def query_workload(
    space: DataSpace,
    radii: Sequence[int],
    queries_per_radius: int,
    rng: random.Random,
) -> list[Circle]:
    """A batch of query circles sweeping the given radii.

    Centers are kept at least ``radius`` away from the space borders when
    possible, so queries are not artificially clipped.
    """
    workload = []
    for radius in radii:
        for _ in range(queries_per_radius):
            lo = min(radius, (space.t - 1) // 2)
            hi = max(space.t - 1 - radius, lo)
            center = tuple(
                rng.randrange(lo, hi + 1) for _ in range(space.w)
            )
            workload.append(Circle.from_radius(center, radius))
    return workload
