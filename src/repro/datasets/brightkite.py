"""Brightkite-style check-in data and the accuracy/efficiency pipeline.

The paper's Table III / Fig. 17 experiment uses location check-ins from the
Brightkite LBS (SNAP project).  The SNAP dump is not bundled here, so this
module provides a faithful synthetic generator — clustered latitude/
longitude check-ins with Brightkite's value ranges and decimal precision —
plus the exact transformation pipeline the paper applies to them:

1. **round** a coordinate to ``d`` decimal digits (Fig. 17: the same record
   kept at several precisions),
2. **scale to integers** (``46.5226 → 465226``) because the schemes encrypt
   integers; latitudes/longitudes are offset to be non-negative first,
3. map a query radius ``R`` at precision ``d`` to an approximate
   **real-world radius in meters** (paper: ``R = 10`` at 4 digits ≈ 100 m).

The substitution is behaviour-preserving for Table III: the measurement is
crypto time as a function of ``R`` and ``n`` only — the coordinates' actual
geography never enters the cost.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.geometry import DataSpace
from repro.errors import ParameterError

__all__ = [
    "CheckIn",
    "generate_checkins",
    "round_coordinate",
    "checkin_to_point",
    "data_space_for_digits",
    "meters_per_unit",
    "real_world_radius_m",
    "radius_for_meters",
    "haversine_m",
]

# Mean meters per degree of latitude (the paper's "approximate" mapping).
_METERS_PER_DEGREE = 111_320.0

# Synthetic "cities": (lat, lon) cluster centers roughly matching the
# geographic spread of Brightkite check-ins (US/Europe/Asia heavy).
_CITY_CENTERS = [
    (37.7749, -122.4194),
    (40.7128, -74.0060),
    (51.5074, -0.1278),
    (35.6762, 139.6503),
    (48.8566, 2.3522),
    (41.8781, -87.6298),
    (34.0522, -118.2437),
    (46.5226, 14.8296),  # the paper's worked example (Slovenia)
    (22.3130, 114.0460),  # from Fig. 2
    (31.2333, 121.4718),  # from Fig. 2
]


@dataclass(frozen=True)
class CheckIn:
    """One check-in record: who, and where (degrees)."""

    user_id: int
    latitude: float
    longitude: float


def generate_checkins(
    n: int,
    rng: random.Random,
    cluster_std_degrees: float = 0.05,
    digits: int = 5,
) -> list[CheckIn]:
    """Generate *n* synthetic Brightkite-like check-ins.

    Check-ins cluster around a fixed set of city centers with Gaussian
    spread, then round to *digits* decimals (Brightkite stores ~5-7).
    """
    if n < 0:
        raise ParameterError("cannot generate a negative number of check-ins")
    checkins = []
    for user_id in range(n):
        lat_c, lon_c = _CITY_CENTERS[rng.randrange(len(_CITY_CENTERS))]
        lat = min(90.0, max(-90.0, rng.gauss(lat_c, cluster_std_degrees)))
        lon = min(180.0, max(-180.0, rng.gauss(lon_c, cluster_std_degrees)))
        checkins.append(
            CheckIn(
                user_id=user_id,
                latitude=round_coordinate(lat, digits),
                longitude=round_coordinate(lon, digits),
            )
        )
    return checkins


def round_coordinate(value: float, digits: int) -> float:
    """Round to *digits* decimal digits (the Fig. 17 precision knob)."""
    if digits < 0:
        raise ParameterError("digits must be non-negative")
    return round(value, digits)


def checkin_to_point(
    checkin: CheckIn, digits: int
) -> tuple[int, int]:
    """Encode a check-in as the integer point the schemes encrypt.

    Coordinates are rounded to *digits* decimals, offset to non-negative
    (latitude + 90, longitude + 180), and scaled by ``10^digits`` — the
    paper's "equivalent integer format".
    """
    scale = 10**digits
    lat = round_coordinate(checkin.latitude, digits)
    lon = round_coordinate(checkin.longitude, digits)
    return (round((lat + 90.0) * scale), round((lon + 180.0) * scale))


def data_space_for_digits(digits: int) -> DataSpace:
    """The integer data space induced by *digits* decimal precision."""
    scale = 10**digits
    return DataSpace(w=2, t=360 * scale + 1)


def meters_per_unit(digits: int) -> float:
    """Approximate meters per integer grid unit at *digits* precision.

    One unit is ``10^-digits`` degrees ≈ ``111,320 / 10^digits`` meters of
    latitude (longitude shrinks with cos(latitude); the paper, like us,
    uses the approximate uniform figure).
    """
    return _METERS_PER_DEGREE / (10**digits)


def real_world_radius_m(radius_units: int, digits: int) -> float:
    """Real-world meters covered by an integer query radius (paper Table III)."""
    return radius_units * meters_per_unit(digits)


def radius_for_meters(meters: float, digits: int) -> int:
    """Smallest integer radius covering *meters* at *digits* precision."""
    if meters < 0:
        raise ParameterError("distance must be non-negative")
    return max(1, math.ceil(meters / meters_per_unit(digits)))


def haversine_m(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in meters (the paper's footnote-3 calculator)."""
    radius_earth_m = 6_371_000.0
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    )
    return 2.0 * radius_earth_m * math.asin(math.sqrt(a))
