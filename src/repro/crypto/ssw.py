"""SSW symmetric-key predicate encryption for inner products.

The paper's Fig. 3 primitive: the Shen-Shi-Waters scheme ("Predicate Privacy
in Encryption Systems", TCC 2009) over a composite-order bilinear group with
``N = p1·p2·p3·p4``.  Data is a vector ``x``, a query is a vector ``v``, and
``Query(TK, C)`` outputs 1 iff ``⟨x, v⟩ = 0`` — without revealing either
vector.  SSW protects both *data privacy* and *query privacy* under
selective chosen-plaintext attacks, which is exactly what CRSE inherits.

Construction (subgroup roles follow :mod:`repro.crypto.groups.base`):

* ``Setup``: secret per-coordinate bases ``h_{1,i}, h_{2,i}, u_{1,i},
  u_{2,i} ∈ G_p``.
* ``Enc(x)``:  ``C = S·g_p^y``, ``C0 = S0·g_p^z``, and for each coordinate
  ``C_{1,i} = h_{1,i}^y · u_{1,i}^z · g_q^{α·x_i} · R_{1,i}``,
  ``C_{2,i} = h_{2,i}^y · u_{2,i}^z · g_q^{β·x_i} · R_{2,i}``
  with fresh ``y, z, α, β ∈ Z_N``, ``S, S0 ∈ G_s``, ``R ∈ G_r``.
* ``GenToken(v)``: ``K = R·∏ h_{1,i}^{-r_{1,i}} h_{2,i}^{-r_{2,i}}``,
  ``K0 = R0·∏ u_{1,i}^{-r_{1,i}} u_{2,i}^{-r_{2,i}}``, and per coordinate
  ``K_{1,i} = g_p^{r_{1,i}} · g_q^{f1·v_i} · S_{1,i}``,
  ``K_{2,i} = g_p^{r_{2,i}} · g_q^{f2·v_i} · S_{2,i}``.
* ``Query``: ``e(C,K) · e(C0,K0) · ∏_i e(C_{1,i},K_{1,i}) ·
  e(C_{2,i},K_{2,i})``.  The ``G_p`` legs telescope away and the product
  collapses to ``e(g_q,g_q)^{(αf1+βf2)·⟨x,v⟩ mod p2}`` — the identity iff
  ``⟨x, v⟩ ≡ 0 (mod p2)``.

Cost/shape facts the paper's evaluation relies on (and our benchmarks
reproduce): a ciphertext and a token are each ``2n + 2`` group elements for
vector length ``n``, and a query costs ``2n + 2`` pairings — evaluated here
as one product-of-pairings (``2n + 2`` Miller loops sharing a single final
exponentiation; see :mod:`repro.crypto.groups.pairing`).

Correctness caveats, handled by callers sizing the payload prime ``p2``
(:func:`repro.crypto.groups.params.params_for_bound`):

* A non-zero inner product divisible by ``p2`` is a false positive, so
  honest inner products must stay below ``p2`` in magnitude.
* With probability ``~1/p2`` the blinding combination ``αf1 + βf2`` vanishes
  mod ``p2`` and a non-match reports a match — the ``negl(λ)`` term in the
  paper's correctness definition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.groups.base import (
    SUBGROUP_P,
    SUBGROUP_Q,
    SUBGROUP_R,
    SUBGROUP_S,
    CompositeBilinearGroup,
    GroupElement,
)
from repro.errors import CryptoError

__all__ = [
    "SSWSecretKey",
    "SSWCiphertext",
    "SSWToken",
    "ssw_setup",
    "ssw_encrypt",
    "ssw_gen_token",
    "ssw_query",
    "ssw_query_element_count",
    "ssw_query_pairing_count",
]


@dataclass(frozen=True, repr=False)
class SSWSecretKey:
    """The SSW master secret key.

    Attributes:
        group: The composite-order bilinear group.
        n: Vector length this key supports.
        h1, h2, u1, u2: Per-coordinate secret bases in ``G_p``.
    """

    group: CompositeBilinearGroup
    n: int
    h1: tuple[GroupElement, ...]
    h2: tuple[GroupElement, ...]
    u1: tuple[GroupElement, ...]
    u2: tuple[GroupElement, ...]

    def __repr__(self) -> str:  # redacted: bases are the master secret
        return (
            f"SSWSecretKey(n={self.n}, "
            f"group_bits={self.group.order.bit_length()})"
        )

    def precompute(self) -> int:
        """Build fixed-base tables for every base this key exponentiates.

        ``Enc`` raises each of the ``4n`` key bases (plus the ``G_p``/``G_q``
        generators and the masking-subgroup generators) to fresh exponents
        per record; a dataset encryption or an ``m``-sub-token CRSE-II
        ``GenToken`` therefore reuses the same bases thousands of times.
        Backends with a fixed-base fast path (the curve) amortize the table
        build across those calls; on other backends this is a no-op.

        Called by :func:`ssw_setup`; call it again after deserializing a
        key into a *fresh* group instance (tables live on the group).

        Returns:
            The number of tables actually built.
        """
        built = 0
        for base in (*self.h1, *self.h2, *self.u1, *self.u2):
            built += self.group.precompute_base(base)
        self.group.precompute_generators()
        return built


@dataclass(frozen=True)
class SSWCiphertext:
    """An SSW ciphertext: ``2n + 2`` group elements."""

    c: GroupElement
    c0: GroupElement
    c1: tuple[GroupElement, ...]
    c2: tuple[GroupElement, ...]

    @property
    def n(self) -> int:
        """Vector length."""
        return len(self.c1)

    def elements(self) -> list[GroupElement]:
        """All group elements in canonical order (for serialization)."""
        return [self.c, self.c0, *self.c1, *self.c2]


@dataclass(frozen=True)
class SSWToken:
    """An SSW search token: ``2n + 2`` group elements."""

    k: GroupElement
    k0: GroupElement
    k1: tuple[GroupElement, ...]
    k2: tuple[GroupElement, ...]

    @property
    def n(self) -> int:
        """Vector length."""
        return len(self.k1)

    def elements(self) -> list[GroupElement]:
        """All group elements in canonical order (for serialization)."""
        return [self.k, self.k0, *self.k1, *self.k2]


def ssw_setup(
    group: CompositeBilinearGroup, n: int, rng: random.Random
) -> SSWSecretKey:
    """Run SSW ``Setup``: sample the secret ``G_p`` bases.

    Args:
        group: A composite-order bilinear group backend.
        n: Supported vector length (``α`` in the paper); must be positive.
        rng: Randomness source (callers pass a CSPRNG-backed ``Random`` in
            production and a seeded one in tests).

    Raises:
        CryptoError: If ``n < 1``.
    """
    if n < 1:
        raise CryptoError("SSW vector length must be at least 1")
    gp = group.subgroup_generator(SUBGROUP_P)
    p1 = group.subgroup_primes[SUBGROUP_P]

    def sample_bases() -> tuple[GroupElement, ...]:
        # Exponents in [1, p1) keep every base a generator of G_p.
        return tuple(gp ** rng.randrange(1, p1) for _ in range(n))

    key = SSWSecretKey(
        group=group,
        n=n,
        h1=sample_bases(),
        h2=sample_bases(),
        u1=sample_bases(),
        u2=sample_bases(),
    )
    key.precompute()
    return key


def _check_vector(sk: SSWSecretKey, vector: list[int] | tuple[int, ...]) -> list[int]:
    if len(vector) != sk.n:
        raise CryptoError(
            f"vector length {len(vector)} does not match key length {sk.n}"
        )
    order = sk.group.order
    return [value % order for value in vector]


def _nonzero_exponent(group: CompositeBilinearGroup, rng: random.Random) -> int:
    """Sample an exponent that is non-zero modulo the payload prime."""
    p2 = group.subgroup_primes[SUBGROUP_Q]
    while True:
        value = group.random_exponent(rng)
        if value % p2:
            return value


def ssw_encrypt(
    sk: SSWSecretKey, x: list[int] | tuple[int, ...], rng: random.Random
) -> SSWCiphertext:
    """Run SSW ``Enc``: encrypt the data vector *x*.

    Entries may be any integers (negative allowed); they are reduced modulo
    the group order.
    """
    x_red = _check_vector(sk, x)
    group = sk.group
    gp = group.subgroup_generator(SUBGROUP_P)
    gq = group.subgroup_generator(SUBGROUP_Q)

    y = group.random_exponent(rng)
    z = group.random_exponent(rng)
    alpha = _nonzero_exponent(group, rng)
    beta = _nonzero_exponent(group, rng)

    c = group.random_subgroup_element(SUBGROUP_S, rng) * gp**y
    c0 = group.random_subgroup_element(SUBGROUP_S, rng) * gp**z
    c1 = []
    c2 = []
    for i, xi in enumerate(x_red):
        payload = gq**xi
        c1.append(
            sk.h1[i] ** y
            * sk.u1[i] ** z
            * payload**alpha
            * group.random_subgroup_element(SUBGROUP_R, rng)
        )
        c2.append(
            sk.h2[i] ** y
            * sk.u2[i] ** z
            * payload**beta
            * group.random_subgroup_element(SUBGROUP_R, rng)
        )
    return SSWCiphertext(c=c, c0=c0, c1=tuple(c1), c2=tuple(c2))


def ssw_gen_token(
    sk: SSWSecretKey, v: list[int] | tuple[int, ...], rng: random.Random
) -> SSWToken:
    """Run SSW ``GenToken``: build a search token for the predicate vector *v*."""
    v_red = _check_vector(sk, v)
    group = sk.group
    gp = group.subgroup_generator(SUBGROUP_P)
    gq = group.subgroup_generator(SUBGROUP_Q)

    f1 = _nonzero_exponent(group, rng)
    f2 = _nonzero_exponent(group, rng)
    r1 = [group.random_exponent(rng) for _ in range(sk.n)]
    r2 = [group.random_exponent(rng) for _ in range(sk.n)]

    k = group.random_subgroup_element(SUBGROUP_R, rng)
    k0 = group.random_subgroup_element(SUBGROUP_R, rng)
    for i in range(sk.n):
        k = k * sk.h1[i] ** (-r1[i]) * sk.h2[i] ** (-r2[i])
        k0 = k0 * sk.u1[i] ** (-r1[i]) * sk.u2[i] ** (-r2[i])

    k1 = []
    k2 = []
    for i, vi in enumerate(v_red):
        payload = gq**vi
        k1.append(
            gp ** r1[i]
            * payload**f1
            * group.random_subgroup_element(SUBGROUP_S, rng)
        )
        k2.append(
            gp ** r2[i]
            * payload**f2
            * group.random_subgroup_element(SUBGROUP_S, rng)
        )
    return SSWToken(k=k, k0=k0, k1=tuple(k1), k2=tuple(k2))


def ssw_query(token: SSWToken, ciphertext: SSWCiphertext) -> bool:
    """Run SSW ``Query``: return True iff the inner product matches zero.

    Costs ``2n + 2`` Miller loops, evaluated as a *product of pairings*
    (:meth:`~repro.crypto.groups.base.CompositeBilinearGroup.multi_pair`):
    only the product is compared against the identity, so the curve backend
    shares one Miller accumulator and performs a single final exponentiation
    instead of ``2n + 2``.

    Raises:
        CryptoError: If the token and ciphertext lengths disagree, or if
            they were built over different group instances (mismatched
            backends or parameters fail here with a typed error instead of
            an opaque failure deep inside the pairing arithmetic).
    """
    if token.n != ciphertext.n:
        raise CryptoError(
            f"token length {token.n} does not match ciphertext length "
            f"{ciphertext.n}"
        )
    group = token.k.group
    if ciphertext.c.group != group:
        raise CryptoError(
            "token and ciphertext were built over different groups"
        )
    pairs = [
        (ciphertext.c, token.k),
        (ciphertext.c0, token.k0),
        *zip(ciphertext.c1, token.k1),
        *zip(ciphertext.c2, token.k2),
    ]
    return group.multi_pair(pairs).is_identity()


def ssw_query_pairing_count(n: int) -> int:
    """Number of pairing evaluations in ``Query`` for vector length *n*."""
    return 2 * n + 2


def ssw_query_element_count(n: int) -> int:
    """Group elements in one ciphertext (equivalently, one token)."""
    return 2 * n + 2
