"""Serialization and size accounting for SSW ciphertexts and tokens.

Two concerns live here:

1. **Wire encoding** — turning ciphertexts/tokens into bytes and back, used
   by the simulated cloud protocol (:mod:`repro.cloud`).  An SSW ciphertext
   or token of vector length ``n`` is ``2n + 2`` group elements, each
   encoded with the backend's fixed-length element encoding, preceded by a
   2-byte big-endian vector length.

2. **Size modelling** — the paper reports sizes at PBC's 512-bit
   supersingular field, where one compressed element is 64 bytes (so a
   CRSE-II ciphertext with ``α = 4`` is ``(2·4+2)·64 = 640`` bytes, Fig. 13,
   and a CRSE-I object at ``R = 3`` is ``(2·16^?…)`` — see Table II).  Our
   backends run smaller fields for speed, so benchmarks report **both** the
   measured encoding size and the paper-equivalent size via
   :class:`ElementSizeModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.ssw import SSWCiphertext, SSWToken
from repro.errors import SerializationError

__all__ = [
    "PAPER_ELEMENT_BYTES",
    "ElementSizeModel",
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_token",
    "deserialize_token",
]

# One compressed element of the paper's 512-bit supersingular field.
PAPER_ELEMENT_BYTES = 64

_LENGTH_PREFIX = 2


@dataclass(frozen=True)
class ElementSizeModel:
    """Predicts object sizes for a given per-element byte cost.

    ``ElementSizeModel(PAPER_ELEMENT_BYTES)`` reproduces every size the
    paper reports; ``ElementSizeModel.for_group(g)`` gives the measured
    sizes of a running backend.
    """

    element_bytes: int

    @classmethod
    def for_group(cls, group: CompositeBilinearGroup) -> "ElementSizeModel":
        """Size model matching a backend's actual element encoding."""
        return cls(group.element_byte_length)

    @classmethod
    def paper(cls) -> "ElementSizeModel":
        """Size model at the paper's 512-bit field (64 B/element)."""
        return cls(PAPER_ELEMENT_BYTES)

    def ssw_object_bytes(self, n: int) -> int:
        """Bytes in one SSW ciphertext or token of vector length *n*."""
        return (2 * n + 2) * self.element_bytes

    def crse2_ciphertext_bytes(self, w: int = 2) -> int:
        """CRSE-II ciphertext size: one SSW object at ``α = w + 2``."""
        return self.ssw_object_bytes(w + 2)

    def crse2_token_bytes(self, m: int, w: int = 2) -> int:
        """CRSE-II token size: *m* sub-tokens at ``α = w + 2``."""
        return m * self.ssw_object_bytes(w + 2)


def _write_elements(
    group: CompositeBilinearGroup, elements: list
) -> bytes:
    chunks = [len(elements).to_bytes(_LENGTH_PREFIX, "big")]
    chunks.extend(group.serialize_element(e) for e in elements)
    return b"".join(chunks)


def _read_elements(group: CompositeBilinearGroup, data: bytes) -> list:
    if len(data) < _LENGTH_PREFIX:
        raise SerializationError("truncated SSW object")
    count = int.from_bytes(data[:_LENGTH_PREFIX], "big")
    size = group.element_byte_length
    expected = _LENGTH_PREFIX + count * size
    if len(data) != expected:
        raise SerializationError(
            f"expected {expected} bytes for {count} elements, got {len(data)}"
        )
    return [
        group.deserialize_element(
            data[_LENGTH_PREFIX + i * size : _LENGTH_PREFIX + (i + 1) * size]
        )
        for i in range(count)
    ]


def _split_ssw_layout(elements: list) -> tuple:
    total = len(elements)
    if total < 4 or total % 2 != 0:
        raise SerializationError(f"invalid SSW element count {total}")
    n = (total - 2) // 2
    return (
        elements[0],
        elements[1],
        tuple(elements[2 : 2 + n]),
        tuple(elements[2 + n :]),
    )


def serialize_ciphertext(
    group: CompositeBilinearGroup, ciphertext: SSWCiphertext
) -> bytes:
    """Encode an SSW ciphertext with the backend's element encoding."""
    return _write_elements(group, ciphertext.elements())


def deserialize_ciphertext(
    group: CompositeBilinearGroup, data: bytes
) -> SSWCiphertext:
    """Invert :func:`serialize_ciphertext`.

    Raises:
        SerializationError: On truncated or malformed input.
    """
    c, c0, c1, c2 = _split_ssw_layout(_read_elements(group, data))
    return SSWCiphertext(c=c, c0=c0, c1=c1, c2=c2)


def serialize_token(group: CompositeBilinearGroup, token: SSWToken) -> bytes:
    """Encode an SSW token with the backend's element encoding."""
    return _write_elements(group, token.elements())


def deserialize_token(group: CompositeBilinearGroup, data: bytes) -> SSWToken:
    """Invert :func:`serialize_token`.

    Raises:
        SerializationError: On truncated or malformed input.
    """
    k, k0, k1, k2 = _split_ssw_layout(_read_elements(group, data))
    return SSWToken(k=k, k0=k0, k1=k1, k2=k2)
