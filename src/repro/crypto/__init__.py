"""Cryptographic layer: bilinear groups, SSW predicate encryption, encoding."""

from repro.crypto.recordcipher import RecordCipher
from repro.crypto.serialize import (
    PAPER_ELEMENT_BYTES,
    ElementSizeModel,
    deserialize_ciphertext,
    deserialize_token,
    serialize_ciphertext,
    serialize_token,
)
from repro.crypto.ssw import (
    SSWCiphertext,
    SSWSecretKey,
    SSWToken,
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_query_element_count,
    ssw_query_pairing_count,
    ssw_setup,
)

__all__ = [
    "PAPER_ELEMENT_BYTES",
    "RecordCipher",
    "ElementSizeModel",
    "SSWCiphertext",
    "SSWSecretKey",
    "SSWToken",
    "deserialize_ciphertext",
    "deserialize_token",
    "serialize_ciphertext",
    "serialize_token",
    "ssw_encrypt",
    "ssw_gen_token",
    "ssw_query",
    "ssw_query_element_count",
    "ssw_query_pairing_count",
    "ssw_setup",
]
