"""Authenticated encryption for record *contents* (paper Sec. III).

The searchable layer protects only the spatial coordinates; the paper notes
that "the encryption and decryption of the content of each data record
itself can always be independently performed with another layer of
traditional encryption".  This module supplies that layer so the cloud
model can store realistic records (names, payloads) next to the CRSE
ciphertexts.

Construction: encrypt-then-MAC over an HMAC-SHA256-based stream cipher —
a standard-library-only stand-in for AES-GCM:

* keystream block ``i`` = ``HMAC(K_enc, nonce ‖ counter_i)``;
* tag = ``HMAC(K_mac, nonce ‖ ciphertext)``;
* ``K_enc, K_mac`` derived from the master key by domain separation.

This is a textbook-secure composition (PRF keystream + strong MAC), not a
performance-tuned cipher; it exists so no plaintext ever reaches the
simulated server, exactly as the paper's deployment assumes.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import CryptoError

__all__ = ["RecordCipher"]

_NONCE_BYTES = 16
_TAG_BYTES = 32
_BLOCK_BYTES = 32  # SHA-256 output


class RecordCipher:
    """Symmetric authenticated encryption for record payloads."""

    def __init__(self, key: bytes):
        """Derive the encryption and MAC subkeys from *key*.

        Args:
            key: Master key; must be at least 16 bytes.

        Raises:
            CryptoError: If the key is too short.
        """
        if len(key) < 16:
            raise CryptoError("record cipher key must be at least 16 bytes")
        self._enc_key = hashlib.sha256(b"repro-enc|" + key).digest()
        self._mac_key = hashlib.sha256(b"repro-mac|" + key).digest()

    @classmethod
    def generate_key(cls) -> bytes:
        """Return a fresh 32-byte random master key."""
        return secrets.token_bytes(32)

    # ------------------------------------------------------------------
    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK_BYTES - 1) // _BLOCK_BYTES):
            blocks.append(
                hmac.new(
                    self._enc_key,
                    nonce + counter.to_bytes(8, "big"),
                    hashlib.sha256,
                ).digest()
            )
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, body: bytes) -> bytes:
        return hmac.new(self._mac_key, nonce + body, hashlib.sha256).digest()

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: bytes, nonce: bytes | None = None) -> bytes:
        """Encrypt and authenticate *plaintext*.

        Returns:
            ``nonce ‖ body ‖ tag``; decryptable only with the same key.

        Raises:
            CryptoError: If an explicit nonce has the wrong length.
        """
        if nonce is None:
            nonce = secrets.token_bytes(_NONCE_BYTES)
        elif len(nonce) != _NONCE_BYTES:
            raise CryptoError(f"nonce must be {_NONCE_BYTES} bytes")
        body = bytes(
            a ^ b for a, b in zip(plaintext, self._keystream(nonce, len(plaintext)))
        )
        return nonce + body + self._tag(nonce, body)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Verify and decrypt.

        Raises:
            CryptoError: On truncation, tampering, or a wrong key.
        """
        if len(ciphertext) < _NONCE_BYTES + _TAG_BYTES:
            raise CryptoError("record ciphertext is truncated")
        nonce = ciphertext[:_NONCE_BYTES]
        body = ciphertext[_NONCE_BYTES:-_TAG_BYTES]
        tag = ciphertext[-_TAG_BYTES:]
        if not hmac.compare_digest(tag, self._tag(nonce, body)):
            raise CryptoError("record ciphertext failed authentication")
        return bytes(
            a ^ b for a, b in zip(body, self._keystream(nonce, len(body)))
        )
