"""Paillier additively homomorphic encryption (paper ref. [28]).

The paper's "straightforward design" discussion (Sec. III) considers
computing distances under an Additively Homomorphic Encryption scheme and
comparing under OPE — and rejects the approach because chaining the two
needs heavy interaction or two non-colluding servers.  To *quantify* that
rejection, the strawman baseline (:mod:`repro.baselines.strawman`)
implements the two-server protocol, and this module supplies the AHE it
runs on: textbook Paillier with the ``g = n + 1`` simplification.

* ``Enc(m) = (n+1)^m · ρ^n mod n²`` for random ``ρ ∈ Z_n*``;
* ``Enc(a)·Enc(b) = Enc(a+b)``; ``Enc(a)^k = Enc(k·a)``;
* decryption via ``L(c^λ mod n²)·μ mod n`` with ``L(x) = (x-1)/n``.

Signed values are encoded in ``[0, n)`` with the upper half negative,
giving the comparison protocol its sign test.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import CryptoError
from repro.math.modular import modinv
from repro.math.primes import random_prime

__all__ = ["PaillierPublicKey", "PaillierSecretKey", "paillier_keygen"]


@dataclass(frozen=True)
class PaillierPublicKey:
    """The public half: modulus ``n`` (and cached ``n²``)."""

    n: int
    n_squared: int

    def encrypt(self, message: int, rng: random.Random) -> int:
        """Encrypt a (signed) integer message.

        Raises:
            CryptoError: If the magnitude exceeds the plaintext space
                (|message| must stay below ``n/2`` for signed decoding).
        """
        if abs(message) >= self.n // 2:
            raise CryptoError("message magnitude exceeds plaintext space")
        m = message % self.n
        while True:
            rho = rng.randrange(1, self.n)
            if math.gcd(rho, self.n) == 1:
                break
        # (n+1)^m = 1 + m·n (mod n²) — the standard g = n+1 shortcut.
        g_m = (1 + m * self.n) % self.n_squared
        return g_m * pow(rho, self.n, self.n_squared) % self.n_squared

    def add(self, a: int, b: int) -> int:
        """Homomorphic addition: ``Enc(x) ⊕ Enc(y) = Enc(x+y)``."""
        return a * b % self.n_squared

    def scalar_mul(self, ciphertext: int, k: int) -> int:
        """Homomorphic scalar multiplication: ``Enc(x)^k = Enc(kx)``."""
        return pow(ciphertext, k % self.n, self.n_squared)

    def encrypt_zero(self, rng: random.Random) -> int:
        """A fresh encryption of zero (used for re-randomization)."""
        return self.encrypt(0, rng)

    def rerandomize(self, ciphertext: int, rng: random.Random) -> int:
        """Refresh a ciphertext without changing its plaintext."""
        return self.add(ciphertext, self.encrypt_zero(rng))


@dataclass(frozen=True, repr=False)
class PaillierSecretKey:
    """The secret half: ``λ = lcm(p-1, q-1)`` and ``μ = L(g^λ)^{-1}``."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def __repr__(self) -> str:  # redacted: λ/μ factor the modulus
        return f"PaillierSecretKey(n_bits={self.public.n.bit_length()})"

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt to a signed integer in ``(-n/2, n/2]``.

        Raises:
            CryptoError: For a ciphertext outside ``Z_{n²}``.
        """
        n = self.public.n
        if not 0 < ciphertext < self.public.n_squared:
            raise CryptoError("ciphertext outside Z_{n^2}")
        x = pow(ciphertext, self.lam, self.public.n_squared)
        plain = (x - 1) // n * self.mu % n
        return plain - n if plain > n // 2 else plain


def paillier_keygen(
    bits: int = 256, rng: random.Random | None = None
) -> PaillierSecretKey:
    """Generate a Paillier key pair with an *bits*-bit modulus.

    Args:
        bits: Modulus size; research-scale values (>= 64) accepted, real
            deployments need 2048+.
        rng: Randomness source; defaults to the OS CSPRNG.  Pass a seeded
            ``random.Random`` only for reproducible tests/benchmarks —
            the factors p, q are the secret key.

    Raises:
        CryptoError: For a modulus too small to be meaningful (< 16 bits).
    """
    if bits < 16:
        raise CryptoError("Paillier modulus below 16 bits is meaningless")
    rng = rng or random.SystemRandom()
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p != q:
            break
    n = p * q
    n_squared = n * n
    lam = math.lcm(p - 1, q - 1)
    public = PaillierPublicKey(n=n, n_squared=n_squared)
    # μ = L((n+1)^λ mod n²)^{-1} mod n, with L(x) = (x-1)/n.
    g_lam = pow(1 + n, lam, n_squared)
    mu = modinv((g_lam - 1) // n, n)
    return PaillierSecretKey(public=public, lam=lam, mu=mu)
