"""Key persistence: serialize scheme keys (and their groups) to bytes.

The data owner "manages the secret keys" (paper Sec. III); a real owner
must survive restarts, so keys need a storage format.  The format is a JSON
header (backend kind, group parameters, scheme metadata) with hex-encoded
group elements — deliberately transparent and debuggable rather than
compact.  Both backends are reconstructible from their parameters alone:
the pairing group derives its generator deterministically from the field
prime, so elements deserialize into an interoperable group.

Only CRSE secret keys live here.  Record-content keys
(:mod:`repro.crypto.recordcipher`) are plain 32-byte strings and need no
format.
"""

from __future__ import annotations

import hashlib
import hmac
import json

from repro.core.crse1 import CRSE1Key, CRSE1Scheme
from repro.core.crse2 import CRSE2Key, CRSE2Scheme
from repro.core.geometry import DataSpace
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import SupersingularPairingGroup
from repro.crypto.groups.params import PairingParams
from repro.crypto.ssw import SSWSecretKey
from repro.errors import SerializationError

__all__ = [
    "save_crse1_key",
    "load_crse1_key",
    "save_crse2_key",
    "load_crse2_key",
    "derive_integrity_secret",
    "group_header",
    "restore_group",
]

_FORMAT_VERSION = 1

_INTEGRITY_DOMAIN = b"repro-integrity-v1|"


def group_header(group: CompositeBilinearGroup) -> dict:
    """Public (non-secret) parameters from which *group* can be rebuilt.

    Used by the key format and by the service layer to ship scheme
    parameters to search worker processes out of band.
    """
    if isinstance(group, FastCompositeGroup):
        return {"backend": "fast", "primes": list(group.subgroup_primes)}
    if isinstance(group, SupersingularPairingGroup):
        return {
            "backend": "pairing",
            "primes": list(group.subgroup_primes),
            "cofactor": group.params.cofactor,
        }
    raise SerializationError(
        f"cannot serialize keys for group type {type(group).__name__}"
    )


def restore_group(header: dict) -> CompositeBilinearGroup:
    """Rebuild a group from :func:`group_header` output.

    Raises:
        SerializationError: For an unknown backend kind.
    """
    primes = tuple(header["primes"])
    if header["backend"] == "fast":
        return FastCompositeGroup(primes)
    if header["backend"] == "pairing":
        n = primes[0] * primes[1] * primes[2] * primes[3]
        params = PairingParams(primes, header["cofactor"], header["cofactor"] * n - 1)
        return SupersingularPairingGroup(params)
    raise SerializationError(f"unknown backend {header['backend']!r}")


def _ssw_to_json(group: CompositeBilinearGroup, ssw: SSWSecretKey) -> dict:
    def encode(elements) -> list[str]:
        return [group.serialize_element(e).hex() for e in elements]

    return {
        "n": ssw.n,
        "h1": encode(ssw.h1),
        "h2": encode(ssw.h2),
        "u1": encode(ssw.u1),
        "u2": encode(ssw.u2),
    }


def _ssw_from_json(group: CompositeBilinearGroup, blob: dict) -> SSWSecretKey:
    def decode(values) -> tuple:
        return tuple(group.deserialize_element(bytes.fromhex(v)) for v in values)

    try:
        key = SSWSecretKey(
            group=group,
            n=blob["n"],
            h1=decode(blob["h1"]),
            h2=decode(blob["h2"]),
            u1=decode(blob["u1"]),
            u2=decode(blob["u2"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed SSW key material: {exc}") from exc
    if any(len(bases) != key.n for bases in (key.h1, key.h2, key.u1, key.u2)):
        raise SerializationError("SSW key base counts do not match n")
    # Fixed-base tables live on the group instance, and this key was just
    # decoded into a fresh one — rebuild them so a restored owner encrypts
    # and tokenizes as fast as the owner that generated the key.
    key.precompute()
    return key


def _radii_fingerprint(radii: tuple[int, ...]) -> bytes:
    """Canonical byte encoding of a CRSE-I radius set for comparison.

    The concentric radii are derived from the key's secret radius ``R``, so
    checking a stored set against the rebuilt scheme must not short-circuit
    on the first differing radius (``hmac.compare_digest`` below).
    """
    return ",".join(str(r) for r in radii).encode()


def _dump(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def _load(data: bytes, expected_scheme: str) -> dict:
    try:
        payload = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed key blob: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("key blob must be a JSON object")
    if payload.get("version") != _FORMAT_VERSION:
        raise SerializationError("unsupported key format version")
    if payload.get("scheme") != expected_scheme:
        raise SerializationError(
            f"key blob is for scheme {payload.get('scheme')!r}, "
            f"expected {expected_scheme!r}"
        )
    return payload


def derive_integrity_secret(scheme, key) -> bytes:
    """Derive the result-integrity master secret from a CRSE scheme key.

    The integrity layer (:mod:`repro.integrity`) needs HMAC keys that only
    the data owner can compute.  Rather than widening the key file format,
    the secret is *derived*: a domain-separated SHA-256 over the canonical
    serialization of the SSW key material, so the same saved key blob
    yields the same tag keys after every restart, on either backend.  The
    derivation is one-way — the 32-byte secret reveals nothing about the
    SSW bases — and the domain prefix keeps it disjoint from every other
    hash in the library.

    Raises:
        SerializationError: If *key* carries no SSW material (unsupported
            key type).
    """
    ssw = getattr(key, "ssw", None)
    if ssw is None:
        raise SerializationError(
            f"cannot derive integrity secret from {type(key).__name__}"
        )
    canonical = _dump(_ssw_to_json(scheme.group, ssw))
    return hashlib.sha256(_INTEGRITY_DOMAIN + canonical).digest()


# ----------------------------------------------------------------------
# CRSE-II
# ----------------------------------------------------------------------
def save_crse2_key(scheme: CRSE2Scheme, key: CRSE2Key) -> bytes:
    """Serialize a CRSE-II key with everything needed to rebuild the scheme."""
    return _dump(
        {
            "version": _FORMAT_VERSION,
            "scheme": "crse2",
            "group": group_header(scheme.group),
            "space": {"w": scheme.space.w, "t": scheme.space.t},
            "ssw": _ssw_to_json(scheme.group, key.ssw),
        }
    )


def load_crse2_key(data: bytes) -> tuple[CRSE2Scheme, CRSE2Key]:
    """Rebuild the scheme and key saved by :func:`save_crse2_key`.

    Raises:
        SerializationError: On malformed or mismatched input.
    """
    payload = _load(data, "crse2")
    try:
        group = restore_group(payload["group"])
        space = DataSpace(payload["space"]["w"], payload["space"]["t"])
        ssw_blob = payload["ssw"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"incomplete key blob: {exc}") from exc
    scheme = CRSE2Scheme(space, group)
    ssw = _ssw_from_json(group, ssw_blob)
    if ssw.n != scheme.alpha:
        raise SerializationError("key vector length does not fit the space")
    return scheme, CRSE2Key(ssw=ssw, split=scheme._split, space=space)


# ----------------------------------------------------------------------
# CRSE-I
# ----------------------------------------------------------------------
def save_crse1_key(scheme: CRSE1Scheme, key: CRSE1Key) -> bytes:
    """Serialize a CRSE-I key (includes the fixed radius and padding)."""
    return _dump(
        {
            "version": _FORMAT_VERSION,
            "scheme": "crse1",
            "group": group_header(scheme.group),
            "space": {"w": scheme.space.w, "t": scheme.space.t},
            "r_squared": key.r_squared,
            "radii_squared": list(key.radii_squared),
            "hide_to": key.m if key.m != scheme._m_real else None,
            "optimized": key.split.alpha != (scheme.space.w + 2) ** key.m,
            "ssw": _ssw_to_json(scheme.group, key.ssw),
        }
    )


def load_crse1_key(data: bytes) -> tuple[CRSE1Scheme, CRSE1Key]:
    """Rebuild the scheme and key saved by :func:`save_crse1_key`.

    Raises:
        SerializationError: On malformed or mismatched input.
    """
    payload = _load(data, "crse1")
    try:
        group = restore_group(payload["group"])
        space = DataSpace(payload["space"]["w"], payload["space"]["t"])
        radii = tuple(payload["radii_squared"])
        hide_to = payload["hide_to"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"incomplete key blob: {exc}") from exc
    scheme = CRSE1Scheme(
        space,
        group,
        r_squared=payload["r_squared"],
        optimize_split=payload["optimized"],
        hide_radius_to=hide_to,
    )
    if not hmac.compare_digest(
        _radii_fingerprint(tuple(scheme._radii_squared)), _radii_fingerprint(radii)
    ):
        raise SerializationError("stored radii do not match the rebuilt scheme")
    ssw = _ssw_from_json(group, payload["ssw"])
    if ssw.n != scheme.alpha:
        raise SerializationError("key vector length does not fit the scheme")
    return scheme, CRSE1Key(
        ssw=ssw,
        split=scheme._split,
        space=space,
        r_squared=payload["r_squared"],
        radii_squared=radii,
    )
