"""Tate pairing on the supersingular curve and the real group backend.

Implements the modified (distortion-map) Tate pairing

    ê(P, Q) = f_{N,P}(φ(Q)) ^ ((q² - 1) / N),    φ(x, y) = (-x, i·y),

via Miller's algorithm.  Because the embedding degree is 2 and ``φ(Q)`` has
its x-coordinate in the base field, *denominator elimination* applies: every
vertical-line factor lies in ``F_q*`` and is annihilated by the final
exponentiation, so the Miller loop multiplies only the (tangent/secant) line
values.  The final exponentiation itself collapses to the cheap form
``(conj(f) / f) ^ l`` with ``l = (q + 1) / N``, using the Frobenius
``f^q = conj(f)`` on ``F_q²``.

This file also provides :class:`SupersingularPairingGroup`, the production
backend implementing :class:`repro.crypto.groups.base.CompositeBilinearGroup`
on the curve — the pure-Python stand-in for the paper's GMP+PBC stack.

Two Miller-loop implementations coexist:

* :func:`miller_loop` / :func:`reduced_tate_pairing` — the textbook affine
  version (one modular inversion per point operation, one final
  exponentiation per pairing).  Kept as the auditable reference and as the
  "naive" arm of the ablation benchmark.
* :func:`multi_miller_loop` / :func:`product_tate_pairing` — the hot path:
  evaluates a whole *product* ``∏ ê(P_i, Q_i)`` with one shared accumulator.
  Points advance in Jacobian coordinates and line values are scaled by
  ``F_q*`` factors instead of inverted denominators (sound for the same
  reason denominator elimination is: anything in ``F_q*`` dies under the
  ``(q - 1)``-part of the final exponentiation), so the loop performs **no**
  modular inversions; the accumulator squares once per bit regardless of
  how many pairs ride along, and one single final exponentiation reduces
  the whole product.  :meth:`SupersingularPairingGroup.multi_pair` exposes
  this to SSW's ``Query``, collapsing its ``2n + 2`` final exponentiations
  into one.
"""

from __future__ import annotations

import random

from repro.crypto.groups.base import (
    NUM_SUBGROUPS,
    CompositeBilinearGroup,
    GroupElement,
    TargetElement,
)
from repro.crypto.groups.curve import (
    INFINITY,
    FixedBaseTable,
    Point,
    SupersingularCurve,
)
from repro.crypto.groups.field import Fq2
from repro.crypto.groups.params import PairingParams
from repro.errors import CryptoError, SerializationError
from repro.math.modular import modinv

__all__ = [
    "miller_loop",
    "multi_miller_loop",
    "reduced_tate_pairing",
    "product_tate_pairing",
    "SupersingularPairingGroup",
    "CurveElement",
    "PairingTargetElement",
]


def _line_value(
    curve: SupersingularCurve,
    t: Point,
    s: Point,
    eval_x: int,
    eval_y_imag: int,
) -> Fq2 | None:
    """Evaluate the line through *t* and *s* at ``(eval_x, i·eval_y_imag)``.

    Returns None when the line is vertical (or touches infinity): those
    values lie in ``F_q*`` and are eliminated by the final exponentiation.
    """
    q = curve.q
    if t.infinite or s.infinite:
        return None
    if t.x == s.x:
        if (t.y + s.y) % q == 0:
            return None  # vertical chord (t == -s) or 2-torsion tangent
        slope = (3 * t.x * t.x + 1) * modinv(2 * t.y % q, q) % q
    else:
        slope = (s.y - t.y) * modinv((s.x - t.x) % q, q) % q
    # l(X, Y) = Y - y_t - slope·(X - x_t) at X = eval_x, Y = i·eval_y_imag.
    real = (-t.y - slope * (eval_x - t.x)) % q
    return Fq2(q, real, eval_y_imag)


def miller_loop(
    curve: SupersingularCurve, p: Point, q_point: Point, order: int
) -> Fq2:
    """Compute ``f_{order,p}(φ(q_point))`` with denominator elimination.

    Args:
        curve: The ambient curve.
        p: First pairing argument; its order must divide *order*.
        q_point: Second pairing argument (distortion map applied here).
        order: The Miller loop length, the group order ``N``.

    Returns:
        The unreduced pairing value in ``F_q²``.
    """
    field_q = curve.q
    eval_x = (-q_point.x) % field_q  # x-coordinate of φ(Q)
    eval_y = q_point.y % field_q  # imaginary part of φ(Q)'s y-coordinate
    f = Fq2.one(field_q)
    t = p
    for bit in bin(order)[3:]:  # skip the leading 1 bit
        line = _line_value(curve, t, t, eval_x, eval_y)
        f = f.square() if line is None else f.square() * line
        t = curve.double(t)
        if bit == "1":
            line = _line_value(curve, t, p, eval_x, eval_y)
            if line is not None:
                f = f * line
            t = curve.add(t, p)
    return f


def reduced_tate_pairing(
    curve: SupersingularCurve, p: Point, q_point: Point, order: int, cofactor: int
) -> Fq2:
    """Return the reduced modified Tate pairing ``ê(p, q_point)``.

    The reduction exponent ``(q² - 1)/N`` factors as ``(q - 1) · l`` with
    ``l = (q + 1)/N = cofactor``; the ``q - 1`` part is a Frobenius divide.
    """
    if p.infinite or q_point.infinite:
        return Fq2.one(curve.q)
    f = miller_loop(curve, p, q_point, order)
    reduced = f.conjugate() * f.inverse()  # f^(q-1)
    return reduced**cofactor


def multi_miller_loop(
    curve: SupersingularCurve,
    pairs: list[tuple[Point, Point]],
    order: int,
) -> Fq2:
    """Compute ``∏ f_{order,P_i}(φ(Q_i))`` with one shared accumulator.

    The loop over the bits of *order* is run once: each pair keeps its own
    running point ``T_i`` (in Jacobian coordinates, so point updates need no
    modular inversion) while a single ``F_q²`` accumulator absorbs every
    pair's line value and is squared once per bit.  Line values are scaled
    by per-step ``F_q*`` factors (the deferred Jacobian denominators); the
    final exponentiation annihilates ``F_q*``, so the *reduced* product is
    unchanged — the same argument that justifies denominator elimination.

    Pairs with an infinite argument contribute the factor 1 and are skipped.

    Returns:
        The unreduced product in ``F_q²`` (equal to the product of the
        per-pair Miller values up to a factor in ``F_q*``).
    """
    q = curve.q
    # Per-pair state: [X, Y, Z, px, py, eval_x, eval_y] — the Jacobian
    # running point T, the affine base P, and φ(Q)'s evaluation coords.
    states = [
        [p.x, p.y, 1, p.x, p.y, (-qp.x) % q, qp.y % q]
        for p, qp in pairs
        if not (p.infinite or qp.infinite)
    ]
    fr, fi = 1, 0  # the shared accumulator, as raw F_q² coefficients
    for bit in bin(order)[3:]:  # skip the leading 1 bit
        # f ← f²  (one squaring for the whole product)
        fr, fi = (fr - fi) * (fr + fi) % q, 2 * fr * fi % q
        for state in states:
            x, y, z = state[0], state[1], state[2]
            if z == 0:
                continue  # T = O: stays O, vertical lines only
            if y == 0:
                state[2] = 0  # 2-torsion: vertical tangent, 2T = O
                continue
            # Tangent line at T evaluated at (eval_x, i·eval_y), scaled by
            # 2YZ³ ∈ F_q*:  real = −2Y² − M(Z²·x_e − X),  imag = 2YZ³·y_e.
            xx = x * x % q
            yy = y * y % q
            zz = z * z % q
            m = (3 * xx + zz * zz) % q
            lr = (-2 * yy - m * (zz * state[5] - x)) % q
            li = 2 * y * z % q * zz % q * state[6] % q
            fr, fi = (fr * lr - fi * li) % q, (fr * li + fi * lr) % q
            # T ← 2T (Jacobian doubling, reusing the shared intermediates).
            s = 4 * x * yy % q
            x3 = (m * m - 2 * s) % q
            state[0] = x3
            state[1] = (m * (s - x3) - 8 * yy * yy) % q
            state[2] = 2 * y * z % q
        if bit == "1":
            for state in states:
                x, y, z, px, py = state[0], state[1], state[2], state[3], state[4]
                if z == 0:
                    # T = O: T + P = P, the line is vertical — no factor.
                    state[0], state[1], state[2] = px, py, 1
                    continue
                zz = z * z % q
                h = (px * zz - x) % q
                r = (py * z % q * zz - y) % q
                if h == 0:
                    if r == 0:
                        # T = P: chord degenerates to the tangent at T.
                        xx = x * x % q
                        yy = y * y % q
                        m = (3 * xx + zz * zz) % q
                        lr = (-2 * yy - m * (zz * state[5] - x)) % q
                        li = 2 * y * z % q * zz % q * state[6] % q
                        fr, fi = (
                            (fr * lr - fi * li) % q,
                            (fr * li + fi * lr) % q,
                        )
                        s = 4 * x * yy % q
                        x3 = (m * m - 2 * s) % q
                        state[0] = x3
                        state[1] = (m * (s - x3) - 8 * yy * yy) % q
                        state[2] = 2 * y * z % q
                    else:
                        state[2] = 0  # T = −P: vertical chord, T + P = O
                    continue
                # Chord through T and P at (eval_x, i·eval_y), scaled by
                # ZH ∈ F_q*:  real = −ZH·y_P − R(x_e − x_P),  imag = ZH·y_e.
                zh = z * h % q
                lr = (-zh * py - r * (state[5] - px)) % q
                li = zh * state[6] % q
                fr, fi = (fr * lr - fi * li) % q, (fr * li + fi * lr) % q
                # T ← T + P (mixed Jacobian addition, reusing H and R).
                hh = h * h % q
                hhh = h * hh % q
                v = x * hh % q
                x3 = (r * r - hhh - 2 * v) % q
                state[0] = x3
                state[1] = (r * (v - x3) - y * hhh) % q
                state[2] = zh
    return Fq2(q, fr, fi)


def product_tate_pairing(
    curve: SupersingularCurve,
    pairs: list[tuple[Point, Point]],
    order: int,
    cofactor: int,
) -> Fq2:
    """Return the reduced product ``∏ ê(P_i, Q_i)``.

    One shared Miller loop (:func:`multi_miller_loop`) and one single final
    exponentiation ``f ↦ (conj(f)/f)^cofactor`` replace ``len(pairs)``
    independent pairings.  Soundness: the final exponentiation is a group
    homomorphism, so reducing the product equals the product of the
    reductions — and SSW-style match tests only ever inspect the product.
    """
    f = multi_miller_loop(curve, pairs, order)
    reduced = f.conjugate() * f.inverse()  # f^(q-1)
    return reduced**cofactor


class CurveElement(GroupElement):
    """A point of the order-``N`` subgroup, as an abstract group element."""

    __slots__ = ("_group", "_point")

    def __init__(self, group: "SupersingularPairingGroup", point: Point):
        self._group = group
        self._point = point

    @property
    def group(self) -> "SupersingularPairingGroup":
        return self._group

    @property
    def point(self) -> Point:
        """The underlying affine point."""
        return self._point

    def _mul(self, other: GroupElement) -> "CurveElement":
        if not isinstance(other, CurveElement):
            raise CryptoError("cannot combine curve and non-curve elements")
        return CurveElement(
            self._group, self._group.curve.add(self._point, other._point)
        )

    def _pow(self, exponent: int) -> "CurveElement":
        group = self._group
        scalar = exponent % group.order
        table = group._fixed_tables.get(self._point)
        if table is not None:
            return CurveElement(group, table.multiply(scalar))
        return CurveElement(group, group.curve.multiply(self._point, scalar))

    def is_identity(self) -> bool:
        return self._point.infinite

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurveElement):
            return NotImplemented
        return self._group == other._group and self._point == other._point

    def __hash__(self) -> int:
        return hash((self._group, self._point))

    def __repr__(self) -> str:
        return f"CurveElement({self._point!r})"


class PairingTargetElement(TargetElement):
    """A reduced pairing value in the order-``N`` subgroup of ``F_q²*``."""

    __slots__ = ("_group", "_value")

    def __init__(self, group: "SupersingularPairingGroup", value: Fq2):
        self._group = group
        self._value = value

    @property
    def value(self) -> Fq2:
        """The underlying field element."""
        return self._value

    def _mul(self, other: TargetElement) -> "PairingTargetElement":
        if not isinstance(other, PairingTargetElement):
            raise CryptoError("cannot combine pairing and non-pairing targets")
        if other._group != self._group:
            raise CryptoError("target elements from different groups")
        return PairingTargetElement(self._group, self._value * other._value)

    def _pow(self, exponent: int) -> "PairingTargetElement":
        scalar = exponent % self._group.order
        return PairingTargetElement(self._group, self._value**scalar)

    def is_identity(self) -> bool:
        return self._value.is_one()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairingTargetElement):
            return NotImplemented
        return self._group == other._group and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._group, self._value))

    def __repr__(self) -> str:
        return f"PairingTargetElement({self._value!r})"


class SupersingularPairingGroup(CompositeBilinearGroup):
    """The order-``N`` subgroup of ``y² = x³ + x`` over ``F_q`` (Type A1)."""

    def __init__(self, params: PairingParams):
        """Build the group and fix a full-order generator.

        The generator is derived deterministically from the parameters, so
        two groups built from equal parameters are interoperable.

        Raises:
            ParameterError: If *params* fail validation.
        """
        params.validate()
        self._params = params
        self.curve = SupersingularCurve(params.field_prime)
        self._order = params.group_order
        # Fixed-base windowing tables, keyed by base point.  Consulted on
        # every exponentiation; populated only via precompute_base().
        self._fixed_tables: dict[Point, FixedBaseTable] = {}
        self._generator = self._find_generator()
        cofactors = [
            self._order // p for p in params.subgroup_primes
        ]
        self._subgroup_generators = tuple(
            CurveElement(
                self, self.curve.multiply(self._generator, c)
            )
            for c in cofactors
        )

    def _find_generator(self) -> Point:
        """Find a point of exact order ``N`` with a non-degenerate pairing."""
        # The generator is *public* and must derive deterministically from
        # the parameters so independently-built groups interoperate (see
        # class docstring); this seeded RNG produces no secret material.
        # reprolint: ignore[CRS001]
        rng = random.Random(self._params.field_prime ^ 0x9E3779B97F4A7C15)
        for _ in range(256):
            candidate = self.curve.multiply(
                self.curve.random_point(rng), self._params.cofactor
            )
            if candidate.infinite:
                continue
            if any(
                self.curve.multiply(candidate, self._order // p).infinite
                for p in self._params.subgroup_primes
            ):
                continue
            pairing = reduced_tate_pairing(
                self.curve,
                candidate,
                candidate,
                self._order,
                self._params.cofactor,
            )
            if all(
                not (pairing ** (self._order // p)).is_one()
                for p in self._params.subgroup_primes
            ):
                return candidate
        raise CryptoError("could not find a full-order generator")

    # ------------------------------------------------------------------
    def _equality_key(self) -> tuple:
        return (type(self), self._params)

    @property
    def params(self) -> PairingParams:
        """The Type-A1 parameters this group was built from."""
        return self._params

    @property
    def subgroup_primes(self) -> tuple[int, int, int, int]:
        return self._params.subgroup_primes

    @property
    def order(self) -> int:
        return self._order

    @property
    def element_byte_length(self) -> int:
        return self.curve.compressed_byte_length()

    def identity(self) -> CurveElement:
        return CurveElement(self, INFINITY)

    def gt_identity(self) -> PairingTargetElement:
        return PairingTargetElement(self, Fq2.one(self.curve.q))

    def generator(self) -> CurveElement:
        return CurveElement(self, self._generator)

    def subgroup_generator(self, index: int) -> CurveElement:
        self._check_subgroup_index(index)
        return self._subgroup_generators[index]

    def precompute_base(self, element: GroupElement) -> bool:
        """Build a fixed-base windowing table for *element* (idempotent).

        Every subsequent ``element ** k`` resolves through the cached
        :class:`~repro.crypto.groups.curve.FixedBaseTable` — one mixed
        addition per exponent window instead of full double-and-add.

        Raises:
            CryptoError: If *element* is not a member of this group.
        """
        if not isinstance(element, CurveElement) or element.group != self:
            raise CryptoError("cannot precompute a foreign group element")
        point = element.point
        if point.infinite or point in self._fixed_tables:
            return False
        self._fixed_tables[point] = FixedBaseTable(
            self.curve, point, self._order.bit_length()
        )
        return True

    @property
    def precomputed_base_count(self) -> int:
        """How many fixed-base tables are currently cached."""
        return len(self._fixed_tables)

    def pair(self, a: GroupElement, b: GroupElement) -> PairingTargetElement:
        if not isinstance(a, CurveElement) or not isinstance(b, CurveElement):
            raise CryptoError("pairing requires curve elements")
        if a.group != self or b.group != self:
            raise CryptoError("pairing elements from a different group")
        value = product_tate_pairing(
            self.curve,
            [(a.point, b.point)],
            self._order,
            self._params.cofactor,
        )
        return PairingTargetElement(self, value)

    def multi_pair(
        self, pairs: list[tuple[GroupElement, GroupElement]]
    ) -> PairingTargetElement:
        """Product of pairings with one Miller loop and one final exp.

        Raises:
            CryptoError: If any element is not a curve element of this
                group (mismatched backends fail here with a typed error
                instead of deep inside the pairing arithmetic).
        """
        points: list[tuple[Point, Point]] = []
        for a, b in pairs:
            if not isinstance(a, CurveElement) or not isinstance(b, CurveElement):
                raise CryptoError("multi_pair requires curve elements")
            if a.group != self or b.group != self:
                raise CryptoError("multi_pair elements from a different group")
            points.append((a.point, b.point))
        value = product_tate_pairing(
            self.curve, points, self._order, self._params.cofactor
        )
        return PairingTargetElement(self, value)

    def serialize_element(self, element: GroupElement) -> bytes:
        if not isinstance(element, CurveElement) or element.group != self:
            raise SerializationError("element does not belong to this group")
        return self.curve.compress(element.point)

    def is_member(self, point: Point) -> bool:
        """True if *point* lies in the order-``N`` subgroup.

        Decompression only proves the point is on the curve, which has
        ``l·N`` points; a point of order dividing ``l`` but not ``N`` would
        survive decoding and corrupt pairing results (a small-subgroup
        confinement vector).  Membership is ``[N]P = O``.
        """
        return self.curve.multiply(point, self._order).infinite

    def deserialize_element(self, data: bytes) -> CurveElement:
        try:
            point = self.curve.decompress(data)
        except CryptoError as exc:
            raise SerializationError(str(exc)) from exc
        if not self.is_member(point):
            raise SerializationError(
                "point is on the curve but outside the order-N subgroup"
            )
        return CurveElement(self, point)

    def __repr__(self) -> str:
        return (
            "SupersingularPairingGroup("
            f"q={self._params.field_prime.bit_length()} bits, "
            f"N={self._order.bit_length()} bits)"
        )


# Keep NUM_SUBGROUPS imported name used (role order documented in base).
_ = NUM_SUBGROUPS
