"""Tate pairing on the supersingular curve and the real group backend.

Implements the modified (distortion-map) Tate pairing

    ê(P, Q) = f_{N,P}(φ(Q)) ^ ((q² - 1) / N),    φ(x, y) = (-x, i·y),

via Miller's algorithm.  Because the embedding degree is 2 and ``φ(Q)`` has
its x-coordinate in the base field, *denominator elimination* applies: every
vertical-line factor lies in ``F_q*`` and is annihilated by the final
exponentiation, so the Miller loop multiplies only the (tangent/secant) line
values.  The final exponentiation itself collapses to the cheap form
``(conj(f) / f) ^ l`` with ``l = (q + 1) / N``, using the Frobenius
``f^q = conj(f)`` on ``F_q²``.

This file also provides :class:`SupersingularPairingGroup`, the production
backend implementing :class:`repro.crypto.groups.base.CompositeBilinearGroup`
on the curve — the pure-Python stand-in for the paper's GMP+PBC stack.
"""

from __future__ import annotations

import random

from repro.crypto.groups.base import (
    NUM_SUBGROUPS,
    CompositeBilinearGroup,
    GroupElement,
    TargetElement,
)
from repro.crypto.groups.curve import INFINITY, Point, SupersingularCurve
from repro.crypto.groups.field import Fq2
from repro.crypto.groups.params import PairingParams
from repro.errors import CryptoError, SerializationError
from repro.math.modular import modinv

__all__ = [
    "miller_loop",
    "reduced_tate_pairing",
    "SupersingularPairingGroup",
    "CurveElement",
    "PairingTargetElement",
]


def _line_value(
    curve: SupersingularCurve,
    t: Point,
    s: Point,
    eval_x: int,
    eval_y_imag: int,
) -> Fq2 | None:
    """Evaluate the line through *t* and *s* at ``(eval_x, i·eval_y_imag)``.

    Returns None when the line is vertical (or touches infinity): those
    values lie in ``F_q*`` and are eliminated by the final exponentiation.
    """
    q = curve.q
    if t.infinite or s.infinite:
        return None
    if t.x == s.x:
        if (t.y + s.y) % q == 0:
            return None  # vertical chord (t == -s) or 2-torsion tangent
        slope = (3 * t.x * t.x + 1) * modinv(2 * t.y % q, q) % q
    else:
        slope = (s.y - t.y) * modinv((s.x - t.x) % q, q) % q
    # l(X, Y) = Y - y_t - slope·(X - x_t) at X = eval_x, Y = i·eval_y_imag.
    real = (-t.y - slope * (eval_x - t.x)) % q
    return Fq2(q, real, eval_y_imag)


def miller_loop(
    curve: SupersingularCurve, p: Point, q_point: Point, order: int
) -> Fq2:
    """Compute ``f_{order,p}(φ(q_point))`` with denominator elimination.

    Args:
        curve: The ambient curve.
        p: First pairing argument; its order must divide *order*.
        q_point: Second pairing argument (distortion map applied here).
        order: The Miller loop length, the group order ``N``.

    Returns:
        The unreduced pairing value in ``F_q²``.
    """
    field_q = curve.q
    eval_x = (-q_point.x) % field_q  # x-coordinate of φ(Q)
    eval_y = q_point.y % field_q  # imaginary part of φ(Q)'s y-coordinate
    f = Fq2.one(field_q)
    t = p
    for bit in bin(order)[3:]:  # skip the leading 1 bit
        line = _line_value(curve, t, t, eval_x, eval_y)
        f = f.square() if line is None else f.square() * line
        t = curve.double(t)
        if bit == "1":
            line = _line_value(curve, t, p, eval_x, eval_y)
            if line is not None:
                f = f * line
            t = curve.add(t, p)
    return f


def reduced_tate_pairing(
    curve: SupersingularCurve, p: Point, q_point: Point, order: int, cofactor: int
) -> Fq2:
    """Return the reduced modified Tate pairing ``ê(p, q_point)``.

    The reduction exponent ``(q² - 1)/N`` factors as ``(q - 1) · l`` with
    ``l = (q + 1)/N = cofactor``; the ``q - 1`` part is a Frobenius divide.
    """
    if p.infinite or q_point.infinite:
        return Fq2.one(curve.q)
    f = miller_loop(curve, p, q_point, order)
    reduced = f.conjugate() * f.inverse()  # f^(q-1)
    return reduced**cofactor


class CurveElement(GroupElement):
    """A point of the order-``N`` subgroup, as an abstract group element."""

    __slots__ = ("_group", "_point")

    def __init__(self, group: "SupersingularPairingGroup", point: Point):
        self._group = group
        self._point = point

    @property
    def group(self) -> "SupersingularPairingGroup":
        return self._group

    @property
    def point(self) -> Point:
        """The underlying affine point."""
        return self._point

    def _mul(self, other: GroupElement) -> "CurveElement":
        if not isinstance(other, CurveElement):
            raise CryptoError("cannot combine curve and non-curve elements")
        return CurveElement(
            self._group, self._group.curve.add(self._point, other._point)
        )

    def _pow(self, exponent: int) -> "CurveElement":
        scalar = exponent % self._group.order
        return CurveElement(
            self._group, self._group.curve.multiply(self._point, scalar)
        )

    def is_identity(self) -> bool:
        return self._point.infinite

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurveElement):
            return NotImplemented
        return self._group == other._group and self._point == other._point

    def __hash__(self) -> int:
        return hash((self._group, self._point))

    def __repr__(self) -> str:
        return f"CurveElement({self._point!r})"


class PairingTargetElement(TargetElement):
    """A reduced pairing value in the order-``N`` subgroup of ``F_q²*``."""

    __slots__ = ("_group", "_value")

    def __init__(self, group: "SupersingularPairingGroup", value: Fq2):
        self._group = group
        self._value = value

    @property
    def value(self) -> Fq2:
        """The underlying field element."""
        return self._value

    def _mul(self, other: TargetElement) -> "PairingTargetElement":
        if not isinstance(other, PairingTargetElement):
            raise CryptoError("cannot combine pairing and non-pairing targets")
        if other._group != self._group:
            raise CryptoError("target elements from different groups")
        return PairingTargetElement(self._group, self._value * other._value)

    def _pow(self, exponent: int) -> "PairingTargetElement":
        scalar = exponent % self._group.order
        return PairingTargetElement(self._group, self._value**scalar)

    def is_identity(self) -> bool:
        return self._value.is_one()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PairingTargetElement):
            return NotImplemented
        return self._group == other._group and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._group, self._value))

    def __repr__(self) -> str:
        return f"PairingTargetElement({self._value!r})"


class SupersingularPairingGroup(CompositeBilinearGroup):
    """The order-``N`` subgroup of ``y² = x³ + x`` over ``F_q`` (Type A1)."""

    def __init__(self, params: PairingParams):
        """Build the group and fix a full-order generator.

        The generator is derived deterministically from the parameters, so
        two groups built from equal parameters are interoperable.

        Raises:
            ParameterError: If *params* fail validation.
        """
        params.validate()
        self._params = params
        self.curve = SupersingularCurve(params.field_prime)
        self._order = params.group_order
        self._generator = self._find_generator()
        cofactors = [
            self._order // p for p in params.subgroup_primes
        ]
        self._subgroup_generators = tuple(
            CurveElement(
                self, self.curve.multiply(self._generator, c)
            )
            for c in cofactors
        )

    def _find_generator(self) -> Point:
        """Find a point of exact order ``N`` with a non-degenerate pairing."""
        # The generator is *public* and must derive deterministically from
        # the parameters so independently-built groups interoperate (see
        # class docstring); this seeded RNG produces no secret material.
        # reprolint: ignore[CRS001]
        rng = random.Random(self._params.field_prime ^ 0x9E3779B97F4A7C15)
        for _ in range(256):
            candidate = self.curve.multiply(
                self.curve.random_point(rng), self._params.cofactor
            )
            if candidate.infinite:
                continue
            if any(
                self.curve.multiply(candidate, self._order // p).infinite
                for p in self._params.subgroup_primes
            ):
                continue
            pairing = reduced_tate_pairing(
                self.curve,
                candidate,
                candidate,
                self._order,
                self._params.cofactor,
            )
            if all(
                not (pairing ** (self._order // p)).is_one()
                for p in self._params.subgroup_primes
            ):
                return candidate
        raise CryptoError("could not find a full-order generator")

    # ------------------------------------------------------------------
    def _equality_key(self) -> tuple:
        return (type(self), self._params)

    @property
    def params(self) -> PairingParams:
        """The Type-A1 parameters this group was built from."""
        return self._params

    @property
    def subgroup_primes(self) -> tuple[int, int, int, int]:
        return self._params.subgroup_primes

    @property
    def order(self) -> int:
        return self._order

    @property
    def element_byte_length(self) -> int:
        return self.curve.compressed_byte_length()

    def identity(self) -> CurveElement:
        return CurveElement(self, INFINITY)

    def gt_identity(self) -> PairingTargetElement:
        return PairingTargetElement(self, Fq2.one(self.curve.q))

    def generator(self) -> CurveElement:
        return CurveElement(self, self._generator)

    def subgroup_generator(self, index: int) -> CurveElement:
        self._check_subgroup_index(index)
        return self._subgroup_generators[index]

    def pair(self, a: GroupElement, b: GroupElement) -> PairingTargetElement:
        if not isinstance(a, CurveElement) or not isinstance(b, CurveElement):
            raise CryptoError("pairing requires curve elements")
        if a.group != self or b.group != self:
            raise CryptoError("pairing elements from a different group")
        value = reduced_tate_pairing(
            self.curve, a.point, b.point, self._order, self._params.cofactor
        )
        return PairingTargetElement(self, value)

    def serialize_element(self, element: GroupElement) -> bytes:
        if not isinstance(element, CurveElement) or element.group != self:
            raise SerializationError("element does not belong to this group")
        return self.curve.compress(element.point)

    def is_member(self, point: Point) -> bool:
        """True if *point* lies in the order-``N`` subgroup.

        Decompression only proves the point is on the curve, which has
        ``l·N`` points; a point of order dividing ``l`` but not ``N`` would
        survive decoding and corrupt pairing results (a small-subgroup
        confinement vector).  Membership is ``[N]P = O``.
        """
        return self.curve.multiply(point, self._order).infinite

    def deserialize_element(self, data: bytes) -> CurveElement:
        try:
            point = self.curve.decompress(data)
        except CryptoError as exc:
            raise SerializationError(str(exc)) from exc
        if not self.is_member(point):
            raise SerializationError(
                "point is on the curve but outside the order-N subgroup"
            )
        return CurveElement(self, point)

    def __repr__(self) -> str:
        return (
            "SupersingularPairingGroup("
            f"q={self._params.field_prime.bit_length()} bits, "
            f"N={self._order.bit_length()} bits)"
        )


# Keep NUM_SUBGROUPS imported name used (role order documented in base).
_ = NUM_SUBGROUPS
