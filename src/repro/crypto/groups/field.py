"""Prime fields and their quadratic extensions.

The paper evaluates on PBC's Type-A/A1 pairing: the supersingular curve
``y² = x³ + x`` over ``F_q`` with ``q ≡ 3 (mod 4)``, whose pairing lands in
the quadratic extension ``F_q² = F_q(i)`` with ``i² = -1`` (``-1`` is a
non-residue precisely because ``q ≡ 3 (mod 4)``).

Base-field arithmetic is done on plain Python integers for speed; this
module adds the extension-field element class used by Miller's algorithm
and the pairing's final exponentiation.
"""

from __future__ import annotations

from repro.math.modular import modinv

__all__ = ["Fq2"]


class Fq2:
    """An element ``real + imag·i`` of ``F_q²`` with ``i² = -1``.

    Immutable.  Elements carry their modulus ``q``; mixing moduli raises
    ``ValueError``.
    """

    __slots__ = ("q", "real", "imag")

    def __init__(self, q: int, real: int, imag: int = 0):
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "real", real % q)
        object.__setattr__(self, "imag", imag % q)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Fq2 elements are immutable")

    # ------------------------------------------------------------------
    @classmethod
    def one(cls, q: int) -> "Fq2":
        """The multiplicative identity."""
        return cls(q, 1, 0)

    @classmethod
    def zero(cls, q: int) -> "Fq2":
        """The additive identity."""
        return cls(q, 0, 0)

    # ------------------------------------------------------------------
    def _check(self, other: "Fq2") -> None:
        if self.q != other.q:
            raise ValueError("Fq2 elements from different fields")

    def __add__(self, other: "Fq2") -> "Fq2":
        self._check(other)
        return Fq2(self.q, self.real + other.real, self.imag + other.imag)

    def __sub__(self, other: "Fq2") -> "Fq2":
        self._check(other)
        return Fq2(self.q, self.real - other.real, self.imag - other.imag)

    def __neg__(self) -> "Fq2":
        return Fq2(self.q, -self.real, -self.imag)

    def __mul__(self, other: "Fq2") -> "Fq2":
        self._check(other)
        q = self.q
        a, b = self.real, self.imag
        c, d = other.real, other.imag
        # (a + bi)(c + di) = (ac - bd) + (ad + bc) i, with i² = -1.
        ac = a * c
        bd = b * d
        return Fq2(q, ac - bd, (a + b) * (c + d) - ac - bd)

    def square(self) -> "Fq2":
        """Return ``self²`` (one fewer multiplication than ``self * self``)."""
        q = self.q
        a, b = self.real, self.imag
        # (a + bi)² = (a - b)(a + b) + 2ab·i.
        return Fq2(q, (a - b) * (a + b), 2 * a * b)

    def conjugate(self) -> "Fq2":
        """Return ``a - b·i``; equals the Frobenius ``self^q``."""
        return Fq2(self.q, self.real, -self.imag)

    def norm(self) -> int:
        """Return the field norm ``a² + b² ∈ F_q``."""
        return (self.real * self.real + self.imag * self.imag) % self.q

    def inverse(self) -> "Fq2":
        """Multiplicative inverse.

        Raises:
            ZeroDivisionError: For the zero element.
        """
        n = self.norm()
        if n == 0:
            raise ZeroDivisionError("inverse of zero in F_q2")
        n_inv = modinv(n, self.q)
        return Fq2(self.q, self.real * n_inv, -self.imag * n_inv)

    def __pow__(self, exponent: int) -> "Fq2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fq2.one(self.q)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def is_zero(self) -> bool:
        """True for the additive identity."""
        return self.real == 0 and self.imag == 0

    def is_one(self) -> bool:
        """True for the multiplicative identity."""
        return self.real == 1 and self.imag == 0

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fq2):
            return NotImplemented
        return (
            self.q == other.q
            and self.real == other.real
            and self.imag == other.imag
        )

    def __hash__(self) -> int:
        return hash((self.q, self.real, self.imag))

    def __repr__(self) -> str:
        return f"Fq2({self.real} + {self.imag}i mod {self.q})"
