"""Fast algebraic backend for composite-order bilinear groups.

A cyclic group of squarefree order ``N = p1·p2·p3·p4`` is isomorphic to
``Z_N`` written additively in the exponent: fix a generator ``g`` and
represent every element as its discrete log ``a`` (so the element *is*
``g^a``).  A symmetric pairing then acts on exponents as multiplication mod
``N``: ``e(g^a, g^b) = gT^{a·b}``.

All of SSW's algebraic requirements hold exactly in this model:

* the order-``p_i`` subgroup is ``{ g^{k·N/p_i} }``,
* subgroup orthogonality: for ``i ≠ j``, ``(N/p_i)(N/p_j) ≡ 0 (mod N)``,
  so cross-subgroup pairings hit the identity,
* bilinearity and non-degeneracy are immediate.

The representation makes discrete logarithms trivial, so this backend offers
**no cryptographic security** — it exists to run functional tests and the
paper-scale benchmark sweeps (Figs. 9-16) in pure Python at full speed,
while :mod:`repro.crypto.groups.pairing` provides the real curve backend
with identical observable behaviour.  Both backends are exercised against
each other in the test suite.
"""

from __future__ import annotations

from repro.crypto.groups.base import (
    CompositeBilinearGroup,
    GroupElement,
    TargetElement,
)
from repro.errors import CryptoError, SerializationError

__all__ = ["FastCompositeGroup", "FastElement", "FastTargetElement"]


class FastElement(GroupElement):
    """Element ``g^exponent`` of a :class:`FastCompositeGroup`."""

    __slots__ = ("_group", "_exponent")

    def __init__(self, group: "FastCompositeGroup", exponent: int):
        self._group = group
        self._exponent = exponent % group.order

    @property
    def group(self) -> "FastCompositeGroup":
        return self._group

    @property
    def exponent(self) -> int:
        """Discrete log with respect to the canonical generator."""
        return self._exponent

    def _mul(self, other: GroupElement) -> "FastElement":
        if not isinstance(other, FastElement):
            raise CryptoError("cannot combine fast and non-fast elements")
        return FastElement(self._group, self._exponent + other._exponent)

    def _pow(self, exponent: int) -> "FastElement":
        return FastElement(self._group, self._exponent * exponent)

    def is_identity(self) -> bool:
        return self._exponent == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FastElement):
            return NotImplemented
        return self._group == other._group and self._exponent == other._exponent

    def __hash__(self) -> int:
        return hash((self._group, self._exponent))

    def __repr__(self) -> str:
        return f"FastElement(g^{self._exponent})"


class FastTargetElement(TargetElement):
    """Element ``gT^exponent`` of the target group."""

    __slots__ = ("_order", "_exponent")

    def __init__(self, order: int, exponent: int):
        self._order = order
        self._exponent = exponent % order

    @property
    def exponent(self) -> int:
        """Discrete log with respect to the canonical target generator."""
        return self._exponent

    def _mul(self, other: TargetElement) -> "FastTargetElement":
        if not isinstance(other, FastTargetElement):
            raise CryptoError("cannot combine fast and non-fast targets")
        if self._order != other._order:
            raise CryptoError("target elements from different groups")
        return FastTargetElement(self._order, self._exponent + other._exponent)

    def _pow(self, exponent: int) -> "FastTargetElement":
        return FastTargetElement(self._order, self._exponent * exponent)

    def is_identity(self) -> bool:
        return self._exponent == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FastTargetElement):
            return NotImplemented
        return self._order == other._order and self._exponent == other._exponent

    def __hash__(self) -> int:
        return hash((self._order, self._exponent))

    def __repr__(self) -> str:
        return f"FastTargetElement(gT^{self._exponent})"


class FastCompositeGroup(CompositeBilinearGroup):
    """Exponent-space simulation of a composite-order pairing group."""

    def __init__(self, subgroup_primes: tuple[int, int, int, int]):
        """Create the group from four distinct primes.

        Args:
            subgroup_primes: The subgroup orders ``(p1, p2, p3, p4)``; must
                be pairwise distinct (squarefree ``N`` makes ``Z_N`` cyclic).

        Raises:
            CryptoError: If the primes are not pairwise distinct.
        """
        if len(set(subgroup_primes)) != 4:
            raise CryptoError("subgroup primes must be pairwise distinct")
        self._primes = tuple(subgroup_primes)
        self._order = 1
        for p in self._primes:
            self._order *= p
        self._byte_length = (self._order.bit_length() + 7) // 8
        self._subgroup_generators = tuple(
            FastElement(self, self._order // p) for p in self._primes
        )

    @property
    def subgroup_primes(self) -> tuple[int, int, int, int]:
        return self._primes  # type: ignore[return-value]

    @property
    def order(self) -> int:
        return self._order

    @property
    def element_byte_length(self) -> int:
        return self._byte_length

    def identity(self) -> FastElement:
        return FastElement(self, 0)

    def gt_identity(self) -> FastTargetElement:
        return FastTargetElement(self._order, 0)

    def generator(self) -> FastElement:
        return FastElement(self, 1)

    def subgroup_generator(self, index: int) -> FastElement:
        self._check_subgroup_index(index)
        return self._subgroup_generators[index]

    def pair(self, a: GroupElement, b: GroupElement) -> FastTargetElement:
        if not isinstance(a, FastElement) or not isinstance(b, FastElement):
            raise CryptoError("pairing requires FastCompositeGroup elements")
        if a.group != self or b.group != self:
            raise CryptoError("pairing elements from a different group")
        return FastTargetElement(self._order, a.exponent * b.exponent)

    def multi_pair(
        self, pairs: list[tuple[GroupElement, GroupElement]]
    ) -> FastTargetElement:
        """Product of pairings: a single exponent dot product mod ``N``."""
        total = 0
        for a, b in pairs:
            if not isinstance(a, FastElement) or not isinstance(b, FastElement):
                raise CryptoError(
                    "multi_pair requires FastCompositeGroup elements"
                )
            if a.group != self or b.group != self:
                raise CryptoError("multi_pair elements from a different group")
            total += a.exponent * b.exponent
        return FastTargetElement(self._order, total)

    def serialize_element(self, element: GroupElement) -> bytes:
        if not isinstance(element, FastElement) or element.group != self:
            raise SerializationError("element does not belong to this group")
        return element.exponent.to_bytes(self._byte_length, "big")

    def deserialize_element(self, data: bytes) -> FastElement:
        if len(data) != self._byte_length:
            raise SerializationError(
                f"expected {self._byte_length} bytes, got {len(data)}"
            )
        value = int.from_bytes(data, "big")
        if value >= self._order:
            raise SerializationError("exponent out of range for this group")
        return FastElement(self, value)

    def __repr__(self) -> str:
        return f"FastCompositeGroup(primes={self._primes})"
