"""Backend-neutral interface for composite-order bilinear groups.

SSW predicate encryption (paper Sec. V, citing Shen-Shi-Waters TCC'09) runs
in a cyclic group ``G`` of composite order ``N = p1·p2·p3·p4`` equipped with
a symmetric bilinear pairing ``e : G × G → G_T``.  The four prime-order
subgroups play distinct roles (following SSW's notation ``G_p, G_q, G_r,
G_s``):

* ``G_p`` (index 0) — the cancellation subgroup tied to the secret key,
* ``G_q`` (index 1) — the payload subgroup carrying vector entries,
* ``G_r`` (index 2) — ciphertext-side masking noise,
* ``G_s`` (index 3) — token-side masking noise.

Two implementations are provided:

* :class:`repro.crypto.groups.pairing.SupersingularPairingGroup` — the real
  thing: the paper's curve ``y² = x³ + x`` with a Tate pairing (what PBC's
  Type-A1 parameters give).
* :class:`repro.crypto.groups.fastgroup.FastCompositeGroup` — an
  algebraically faithful simulation with trivial discrete logs, used to run
  large benchmark sweeps at Python speed.

Every scheme above this layer is written against the abstract interface, so
the backends are interchangeable.
"""

from __future__ import annotations

import abc
import random

from repro.errors import CryptoError

__all__ = [
    "GroupElement",
    "TargetElement",
    "CompositeBilinearGroup",
    "SUBGROUP_P",
    "SUBGROUP_Q",
    "SUBGROUP_R",
    "SUBGROUP_S",
    "NUM_SUBGROUPS",
]

# Symbolic indices for the four prime-order subgroups (SSW naming).
SUBGROUP_P = 0
SUBGROUP_Q = 1
SUBGROUP_R = 2
SUBGROUP_S = 3
NUM_SUBGROUPS = 4


class GroupElement(abc.ABC):
    """An element of the source group ``G``.

    Elements are immutable.  Group operations use multiplicative notation:
    ``a * b``, ``a ** k`` (integer ``k``, negatives allowed), and ``~a`` for
    the inverse.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def group(self) -> "CompositeBilinearGroup":
        """The group this element belongs to."""

    @abc.abstractmethod
    def _mul(self, other: "GroupElement") -> "GroupElement":
        """Multiply by another element of the same group."""

    @abc.abstractmethod
    def _pow(self, exponent: int) -> "GroupElement":
        """Raise to an integer power (reduced mod the group order)."""

    @abc.abstractmethod
    def is_identity(self) -> bool:
        """True if this is the neutral element."""

    @abc.abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abc.abstractmethod
    def __hash__(self) -> int: ...

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        if not isinstance(other, GroupElement):
            return NotImplemented
        if other.group != self.group:
            raise CryptoError("cannot combine elements from different groups")
        return self._mul(other)

    def __pow__(self, exponent: int) -> "GroupElement":
        if not isinstance(exponent, int):
            return NotImplemented
        return self._pow(exponent)

    def __invert__(self) -> "GroupElement":
        return self._pow(-1)


class TargetElement(abc.ABC):
    """An element of the target group ``G_T`` (output of the pairing)."""

    __slots__ = ()

    @abc.abstractmethod
    def _mul(self, other: "TargetElement") -> "TargetElement":
        """Multiply by another target-group element."""

    @abc.abstractmethod
    def _pow(self, exponent: int) -> "TargetElement":
        """Raise to an integer power."""

    @abc.abstractmethod
    def is_identity(self) -> bool:
        """True if this is the neutral element of ``G_T``.

        SSW's ``Query`` reduces a match to exactly this test.
        """

    @abc.abstractmethod
    def __eq__(self, other: object) -> bool: ...

    @abc.abstractmethod
    def __hash__(self) -> int: ...

    def __mul__(self, other: "TargetElement") -> "TargetElement":
        if not isinstance(other, TargetElement):
            return NotImplemented
        return self._mul(other)

    def __pow__(self, exponent: int) -> "TargetElement":
        if not isinstance(exponent, int):
            return NotImplemented
        return self._pow(exponent)

    def __invert__(self) -> "TargetElement":
        return self._pow(-1)


class CompositeBilinearGroup(abc.ABC):
    """A cyclic group of order ``N = p1·p2·p3·p4`` with a symmetric pairing.

    Groups compare by *value*: two instances of the same backend built from
    equal parameters are interchangeable (their elements combine freely and
    serialized keys restore into compatible groups).  Backends with extra
    parameters extend :meth:`_equality_key`.
    """

    def _equality_key(self) -> tuple:
        """The value identity of this group (type + parameters)."""
        return (type(self), self.subgroup_primes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeBilinearGroup):
            return NotImplemented
        return self._equality_key() == other._equality_key()

    def __hash__(self) -> int:
        return hash(self._equality_key())

    @property
    @abc.abstractmethod
    def subgroup_primes(self) -> tuple[int, int, int, int]:
        """The four distinct subgroup primes ``(p1, p2, p3, p4)``."""

    @property
    def order(self) -> int:
        """The composite group order ``N``."""
        p1, p2, p3, p4 = self.subgroup_primes
        return p1 * p2 * p3 * p4

    @property
    @abc.abstractmethod
    def element_byte_length(self) -> int:
        """Serialized size in bytes of one element of ``G``."""

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def identity(self) -> GroupElement:
        """The neutral element of ``G``."""

    @abc.abstractmethod
    def gt_identity(self) -> TargetElement:
        """The neutral element of ``G_T``."""

    @abc.abstractmethod
    def generator(self) -> GroupElement:
        """A fixed generator of the full order-``N`` group."""

    def subgroup_generator(self, index: int) -> GroupElement:
        """Return the canonical generator of the order-``p_index`` subgroup."""
        self._check_subgroup_index(index)
        cofactor = self.order // self.subgroup_primes[index]
        return self.generator() ** cofactor

    def random_subgroup_element(
        self, index: int, rng: random.Random
    ) -> GroupElement:
        """Sample uniformly from the order-``p_index`` subgroup.

        The identity is included (probability ``1/p_index``), matching the
        uniform sampling SSW's masking subgroups require.
        """
        self._check_subgroup_index(index)
        exponent = rng.randrange(self.subgroup_primes[index])
        return self.subgroup_generator(index) ** exponent

    def random_exponent(self, rng: random.Random) -> int:
        """Sample a uniform exponent in ``Z_N``."""
        return rng.randrange(self.order)

    # ------------------------------------------------------------------
    # Fixed-base precomputation
    # ------------------------------------------------------------------
    def precompute_base(self, element: GroupElement) -> bool:
        """Build (and cache) fixed-base acceleration tables for *element*.

        Backends where exponentiation has a fixed-base fast path (the curve
        backend's windowing tables) override this; the default is a no-op.
        Precomputation never changes results — only speed — so callers may
        invoke it unconditionally.

        Returns:
            True if a table was built, False if cached already or the
            backend has nothing to precompute.

        Raises:
            CryptoError: If *element* does not belong to this group.
        """
        if element.group != self:
            raise CryptoError("cannot precompute a foreign group element")
        return False

    def precompute_generators(self) -> None:
        """Precompute fixed-base tables for the full and subgroup generators.

        These are the bases behind :meth:`random_subgroup_element` — the
        masking-element sampling that dominates SSW ``Enc``/``GenToken``
        outside the key bases themselves.
        """
        self.precompute_base(self.generator())
        for index in range(NUM_SUBGROUPS):
            self.precompute_base(self.subgroup_generator(index))

    # ------------------------------------------------------------------
    # Pairing and serialization
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pair(self, a: GroupElement, b: GroupElement) -> TargetElement:
        """Evaluate the symmetric bilinear pairing ``e(a, b)``."""

    def multi_pair(
        self, pairs: "list[tuple[GroupElement, GroupElement]]"
    ) -> TargetElement:
        """Evaluate the product of pairings ``∏ e(a_i, b_i)``.

        This is SSW ``Query``'s shape: only the *product* is tested against
        the identity, so backends may share work across the pairs — the
        curve backend runs one Miller accumulator and a **single** final
        exponentiation for the whole product.  This default evaluates the
        pairs one by one, which every backend supports (and which the
        ablation benchmark uses as the per-pair reference).

        Raises:
            CryptoError: If any element belongs to a different group (the
                per-pair :meth:`pair` check, surfaced before any pairing
                math runs).
        """
        for a, b in pairs:
            if a.group != self or b.group != self:
                raise CryptoError(
                    "multi_pair elements from a different group"
                )
        result = self.gt_identity()
        for a, b in pairs:
            result = result * self.pair(a, b)
        return result

    @abc.abstractmethod
    def serialize_element(self, element: GroupElement) -> bytes:
        """Encode an element of ``G`` as bytes (fixed length)."""

    @abc.abstractmethod
    def deserialize_element(self, data: bytes) -> GroupElement:
        """Invert :meth:`serialize_element`.

        Raises:
            SerializationError: If *data* does not encode a group element.
        """

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_subgroup_index(self, index: int) -> None:
        if not 0 <= index < NUM_SUBGROUPS:
            raise CryptoError(
                f"subgroup index {index} out of range [0, {NUM_SUBGROUPS})"
            )

    def exponent_bound_ok(self, bound: int) -> bool:
        """Check the SSW correctness precondition against this group.

        A scheme whose honest inner products have absolute value at most
        *bound* is false-positive-free iff the payload prime ``p2`` exceeds
        *bound* (values reduce mod ``p2`` in the pairing exponent).
        """
        return self.subgroup_primes[SUBGROUP_Q] > bound
