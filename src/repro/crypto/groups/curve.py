"""The supersingular elliptic curve ``y² = x³ + x`` over ``F_q``.

This is the curve the paper selects ("we choose super-singular curve
``y² = x³ + x`` to achieve the fastest performance in PBC", Sec. VIII).
For ``q ≡ 3 (mod 4)`` it is supersingular with exactly ``q + 1`` rational
points and embedding degree 2, which is what makes the composite-order
Type-A1 construction work: pick ``q = l·N - 1`` and the curve contains a
subgroup of any order dividing ``l·N``.

Affine coordinates with big-int arithmetic; the point at infinity is the
``INFINITY`` singleton.  Scalar multiplication is double-and-add — entirely
adequate for the subgroup sizes the reproduction runs at, and it keeps the
group law code auditable against the textbook formulas.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError
from repro.math.modular import is_quadratic_residue, modinv, sqrt_mod

__all__ = ["Point", "INFINITY", "SupersingularCurve"]


class Point:
    """An affine point ``(x, y)`` or the point at infinity."""

    __slots__ = ("x", "y", "_infinite")

    def __init__(self, x: int = 0, y: int = 0, infinite: bool = False):
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "_infinite", infinite)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("curve points are immutable")

    @property
    def infinite(self) -> bool:
        """True for the point at infinity (the group identity)."""
        return self._infinite

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self._infinite or other._infinite:
            return self._infinite and other._infinite
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self._infinite:
            return hash("infinity")
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self._infinite:
            return "Point(infinity)"
        return f"Point({self.x}, {self.y})"


INFINITY = Point(infinite=True)


class SupersingularCurve:
    """Group operations on ``y² = x³ + x`` over ``F_q``."""

    def __init__(self, q: int):
        """Create the curve over ``F_q``.

        Args:
            q: The field characteristic; must satisfy ``q ≡ 3 (mod 4)`` so
                the curve is supersingular with ``#E = q + 1``.

        Raises:
            CryptoError: If ``q`` is not ``3 (mod 4)``.
        """
        if q % 4 != 3:
            raise CryptoError("field prime must satisfy q ≡ 3 (mod 4)")
        self.q = q

    @property
    def order(self) -> int:
        """The number of rational points, ``q + 1``."""
        return self.q + 1

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Point) -> bool:
        """True if *point* satisfies the curve equation (infinity counts)."""
        if point.infinite:
            return True
        q = self.q
        return (point.y * point.y - (point.x**3 + point.x)) % q == 0

    # ------------------------------------------------------------------
    # Group law
    # ------------------------------------------------------------------
    def negate(self, point: Point) -> Point:
        """Return ``-point``."""
        if point.infinite:
            return INFINITY
        return Point(point.x, (-point.y) % self.q)

    def add(self, a: Point, b: Point) -> Point:
        """Return ``a + b`` by the chord-and-tangent law."""
        if a.infinite:
            return b
        if b.infinite:
            return a
        q = self.q
        if a.x == b.x:
            if (a.y + b.y) % q == 0:
                return INFINITY
            return self.double(a)
        slope = (b.y - a.y) * modinv((b.x - a.x) % q, q) % q
        x3 = (slope * slope - a.x - b.x) % q
        y3 = (slope * (a.x - x3) - a.y) % q
        return Point(x3, y3)

    def double(self, a: Point) -> Point:
        """Return ``2a``."""
        if a.infinite:
            return INFINITY
        q = self.q
        if a.y == 0:
            return INFINITY
        # Tangent slope for y² = x³ + x: (3x² + 1) / (2y).
        slope = (3 * a.x * a.x + 1) * modinv(2 * a.y % q, q) % q
        x3 = (slope * slope - 2 * a.x) % q
        y3 = (slope * (a.x - x3) - a.y) % q
        return Point(x3, y3)

    def multiply(self, point: Point, scalar: int) -> Point:
        """Return ``scalar · point`` (double-and-add; negatives allowed)."""
        if scalar < 0:
            return self.multiply(self.negate(point), -scalar)
        result = INFINITY
        addend = point
        k = scalar
        while k:
            if k & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # Sampling and encoding
    # ------------------------------------------------------------------
    def random_point(self, rng: random.Random) -> Point:
        """Sample a uniform finite point.

        Draws ``x`` until ``x³ + x`` is a quadratic residue, then picks the
        root whose sign bit is random.
        """
        q = self.q
        while True:
            x = rng.randrange(q)
            rhs = (x**3 + x) % q
            if not is_quadratic_residue(rhs, q):
                continue
            y = sqrt_mod(rhs, q)
            if rng.getrandbits(1):
                y = (-y) % q
            return Point(x, y)

    def compressed_byte_length(self) -> int:
        """Bytes needed for a compressed point: x-coordinate plus a tag."""
        return (self.q.bit_length() + 7) // 8 + 1

    def compress(self, point: Point) -> bytes:
        """Encode a point as x-coordinate plus a sign/infinity tag byte."""
        size = (self.q.bit_length() + 7) // 8
        if point.infinite:
            return bytes([2]) + bytes(size)
        tag = point.y & 1
        return bytes([tag]) + point.x.to_bytes(size, "big")

    def decompress(self, data: bytes) -> Point:
        """Invert :meth:`compress`.

        Raises:
            CryptoError: If the encoding is malformed or not on the curve.
        """
        size = (self.q.bit_length() + 7) // 8
        if len(data) != size + 1:
            raise CryptoError(
                f"compressed point must be {size + 1} bytes, got {len(data)}"
            )
        tag = data[0]
        if tag == 2:
            return INFINITY
        if tag not in (0, 1):
            raise CryptoError(f"invalid point tag {tag}")
        x = int.from_bytes(data[1:], "big")
        if x >= self.q:
            raise CryptoError("x-coordinate out of field range")
        rhs = (x**3 + x) % self.q
        if not is_quadratic_residue(rhs, self.q):
            raise CryptoError("x-coordinate is not on the curve")
        y = sqrt_mod(rhs, self.q)
        if y & 1 != tag:
            y = (-y) % self.q
        return Point(x, y)
