"""The supersingular elliptic curve ``y² = x³ + x`` over ``F_q``.

This is the curve the paper selects ("we choose super-singular curve
``y² = x³ + x`` to achieve the fastest performance in PBC", Sec. VIII).
For ``q ≡ 3 (mod 4)`` it is supersingular with exactly ``q + 1`` rational
points and embedding degree 2, which is what makes the composite-order
Type-A1 construction work: pick ``q = l·N - 1`` and the curve contains a
subgroup of any order dividing ``l·N``.

The public group law (``add``/``double``) stays in affine coordinates with
the textbook chord-and-tangent formulas, auditable against any reference.
The *hot path* is different: scalar multiplication runs in Jacobian
projective coordinates ``(X, Y, Z)`` with ``x = X/Z², y = Y/Z³`` — no
modular inversion per point operation — recodes the scalar in width-``w``
NAF form, and normalizes whole precomputation tables back to affine with a
single batched inversion (:func:`repro.math.modular.batch_modinv`).  Fixed
bases (generators, SSW key bases) get radix-``2^w`` windowing tables
(:class:`FixedBaseTable`) so a scalar multiplication collapses to one mixed
addition per window.  The original double-and-add survives as
:meth:`SupersingularCurve.multiply_naive` for differential tests and the
ablation benchmark.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError
from repro.math.modular import batch_modinv, is_quadratic_residue, modinv, sqrt_mod

__all__ = ["Point", "INFINITY", "SupersingularCurve", "FixedBaseTable"]


class Point:
    """An affine point ``(x, y)`` or the point at infinity."""

    __slots__ = ("x", "y", "_infinite")

    def __init__(self, x: int = 0, y: int = 0, infinite: bool = False):
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "_infinite", infinite)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("curve points are immutable")

    @property
    def infinite(self) -> bool:
        """True for the point at infinity (the group identity)."""
        return self._infinite

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self._infinite or other._infinite:
            return self._infinite and other._infinite
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self._infinite:
            return hash("infinity")
        return hash((self.x, self.y))

    def __repr__(self) -> str:
        if self._infinite:
            return "Point(infinity)"
        return f"Point({self.x}, {self.y})"


INFINITY = Point(infinite=True)


# ----------------------------------------------------------------------
# Jacobian projective arithmetic on y² = x³ + x (curve coefficient a = 1).
#
# A point is a plain ``(X, Y, Z)`` tuple with ``x = X/Z², y = Y/Z³``;
# ``Z = 0`` encodes the point at infinity.  No formula below performs a
# modular inversion — that is the whole point (one inversion per *batch*
# happens only when converting back to affine).  The pairing module reuses
# these helpers for its inversion-free Miller loop.
# ----------------------------------------------------------------------

JAC_INFINITY = (1, 1, 0)


def jac_from_affine(point: Point) -> tuple[int, int, int]:
    """Lift an affine :class:`Point` to Jacobian coordinates."""
    if point.infinite:
        return JAC_INFINITY
    return (point.x, point.y, 1)


def jac_to_affine(jac: tuple[int, int, int], q: int) -> Point:
    """Project a Jacobian triple back to an affine :class:`Point`.

    Costs the one modular inversion the Jacobian pipeline deferred.
    """
    x, y, z = jac
    if z == 0:
        return INFINITY
    z_inv = modinv(z, q)
    zi2 = z_inv * z_inv % q
    return Point(x * zi2 % q, y * zi2 * z_inv % q)


def jac_double(jac: tuple[int, int, int], q: int) -> tuple[int, int, int]:
    """Double a Jacobian point (a = 1 tangent formulas, inversion-free)."""
    x, y, z = jac
    if z == 0 or y == 0:  # infinity, or 2-torsion (vertical tangent)
        return JAC_INFINITY
    yy = y * y % q
    s = 4 * x * yy % q
    zz = z * z % q
    m = (3 * x * x + zz * zz) % q  # 3x² + a·z⁴ with a = 1
    x3 = (m * m - 2 * s) % q
    y3 = (m * (s - x3) - 8 * yy * yy) % q
    z3 = 2 * y * z % q
    return (x3, y3, z3)


def jac_add_mixed(
    jac: tuple[int, int, int], x2: int, y2: int, q: int
) -> tuple[int, int, int]:
    """Add the affine point ``(x2, y2)`` to a Jacobian point."""
    x1, y1, z1 = jac
    if z1 == 0:
        return (x2, y2, 1)
    z1z1 = z1 * z1 % q
    u2 = x2 * z1z1 % q
    s2 = y2 * z1 * z1z1 % q
    h = (u2 - x1) % q
    r = (s2 - y1) % q
    if h == 0:
        if r == 0:
            return jac_double(jac, q)
        return JAC_INFINITY
    hh = h * h % q
    hhh = h * hh % q
    v = x1 * hh % q
    x3 = (r * r - hhh - 2 * v) % q
    y3 = (r * (v - x3) - y1 * hhh) % q
    z3 = z1 * h % q
    return (x3, y3, z3)


def jac_add(
    a: tuple[int, int, int], b: tuple[int, int, int], q: int
) -> tuple[int, int, int]:
    """Add two Jacobian points (general, inversion-free)."""
    x1, y1, z1 = a
    x2, y2, z2 = b
    if z1 == 0:
        return b
    if z2 == 0:
        return a
    z1z1 = z1 * z1 % q
    z2z2 = z2 * z2 % q
    u1 = x1 * z2z2 % q
    u2 = x2 * z1z1 % q
    s1 = y1 * z2 * z2z2 % q
    s2 = y2 * z1 * z1z1 % q
    h = (u2 - u1) % q
    r = (s2 - s1) % q
    if h == 0:
        if r == 0:
            return jac_double(a, q)
        return JAC_INFINITY
    hh = h * h % q
    hhh = h * hh % q
    v = u1 * hh % q
    x3 = (r * r - hhh - 2 * v) % q
    y3 = (r * (v - x3) - s1 * hhh) % q
    z3 = z1 * z2 % q * h % q
    return (x3, y3, z3)


def jac_batch_to_affine(
    jacs: list[tuple[int, int, int]], q: int
) -> list[Point]:
    """Normalize many Jacobian points with one shared inversion.

    Montgomery's trick replaces one inversion per point with a single
    :func:`~repro.math.modular.batch_modinv` call — the step that makes
    precomputation tables cheap to build.
    """
    finite = [(i, jac) for i, jac in enumerate(jacs) if jac[2] != 0]
    inverses = batch_modinv([jac[2] for _, jac in finite], q)
    points = [INFINITY] * len(jacs)
    for (i, (x, y, z)), z_inv in zip(finite, inverses):
        zi2 = z_inv * z_inv % q
        points[i] = Point(x * zi2 % q, y * zi2 * z_inv % q)
    return points


def _wnaf(scalar: int, width: int) -> list[int]:
    """Width-``w`` NAF digits of a positive scalar, least significant first.

    Digits are zero or odd in ``(-2^{w-1}, 2^{w-1})``; at most one of any
    ``w`` consecutive digits is non-zero, so double-and-add needs ~``1/(w+1)``
    additions per bit instead of ``1/2``.
    """
    digits: list[int] = []
    full = 1 << width
    half = full >> 1
    while scalar:
        if scalar & 1:
            digit = scalar & (full - 1)
            if digit >= half:
                digit -= full
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _wnaf_width(bits: int) -> int:
    """Window width minimizing cost for a scalar of *bits* bits."""
    if bits <= 10:
        return 2
    if bits <= 32:
        return 3
    if bits <= 160:
        return 4
    return 5


class SupersingularCurve:
    """Group operations on ``y² = x³ + x`` over ``F_q``."""

    def __init__(self, q: int):
        """Create the curve over ``F_q``.

        Args:
            q: The field characteristic; must satisfy ``q ≡ 3 (mod 4)`` so
                the curve is supersingular with ``#E = q + 1``.

        Raises:
            CryptoError: If ``q`` is not ``3 (mod 4)``.
        """
        if q % 4 != 3:
            raise CryptoError("field prime must satisfy q ≡ 3 (mod 4)")
        self.q = q

    @property
    def order(self) -> int:
        """The number of rational points, ``q + 1``."""
        return self.q + 1

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains(self, point: Point) -> bool:
        """True if *point* satisfies the curve equation (infinity counts)."""
        if point.infinite:
            return True
        q = self.q
        return (point.y * point.y - (point.x**3 + point.x)) % q == 0

    # ------------------------------------------------------------------
    # Group law
    # ------------------------------------------------------------------
    def negate(self, point: Point) -> Point:
        """Return ``-point``."""
        if point.infinite:
            return INFINITY
        return Point(point.x, (-point.y) % self.q)

    def add(self, a: Point, b: Point) -> Point:
        """Return ``a + b`` by the chord-and-tangent law."""
        if a.infinite:
            return b
        if b.infinite:
            return a
        q = self.q
        if a.x == b.x:
            if (a.y + b.y) % q == 0:
                return INFINITY
            return self.double(a)
        slope = (b.y - a.y) * modinv((b.x - a.x) % q, q) % q
        x3 = (slope * slope - a.x - b.x) % q
        y3 = (slope * (a.x - x3) - a.y) % q
        return Point(x3, y3)

    def double(self, a: Point) -> Point:
        """Return ``2a``."""
        if a.infinite:
            return INFINITY
        q = self.q
        if a.y == 0:
            return INFINITY
        # Tangent slope for y² = x³ + x: (3x² + 1) / (2y).
        slope = (3 * a.x * a.x + 1) * modinv(2 * a.y % q, q) % q
        x3 = (slope * slope - 2 * a.x) % q
        y3 = (slope * (a.x - x3) - a.y) % q
        return Point(x3, y3)

    def multiply(self, point: Point, scalar: int) -> Point:
        """Return ``scalar · point`` (negatives allowed).

        Runs in Jacobian coordinates with width-``w`` NAF recoding: the odd
        multiples ``P, 3P, …`` are precomputed once, normalized to affine
        with a single batched inversion, and the main loop is inversion-free
        (one more inversion converts the result back to affine).  Agreement
        with :meth:`multiply_naive` is property-tested.
        """
        if scalar < 0:
            return self.multiply(self.negate(point), -scalar)
        if scalar == 0 or point.infinite:
            return INFINITY
        if scalar == 1:
            return point
        q = self.q
        width = _wnaf_width(scalar.bit_length())
        digits = _wnaf(scalar, width)
        # Odd multiples P, 3P, …, (2^{w-1}-1)P, normalized to affine so the
        # scan below uses cheap mixed additions.
        base = jac_from_affine(point)
        if width == 2:
            odd = [point]
        else:
            twice = jac_double(base, q)
            jacs = [base]
            for _ in range((1 << (width - 2)) - 1):
                jacs.append(jac_add(jacs[-1], twice, q))
            odd = jac_batch_to_affine(jacs, q)
        acc = JAC_INFINITY
        for digit in reversed(digits):
            acc = jac_double(acc, q)
            if digit:
                entry = odd[abs(digit) >> 1]
                if entry.infinite:
                    continue  # small-order point: this multiple vanished
                y = entry.y if digit > 0 else (-entry.y) % q
                acc = jac_add_mixed(acc, entry.x, y, q)
        return jac_to_affine(acc, q)

    def multiply_naive(self, point: Point, scalar: int) -> Point:
        """Return ``scalar · point`` by affine double-and-add.

        The pre-optimization reference implementation: one modular inversion
        per point operation.  Kept for differential tests and the pairing
        ablation benchmark.
        """
        if scalar < 0:
            return self.multiply_naive(self.negate(point), -scalar)
        result = INFINITY
        addend = point
        k = scalar
        while k:
            if k & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # Sampling and encoding
    # ------------------------------------------------------------------
    def random_point(self, rng: random.Random) -> Point:
        """Sample a uniform finite point.

        Draws ``x`` until ``x³ + x`` is a quadratic residue, then picks the
        root whose sign bit is random.
        """
        q = self.q
        while True:
            x = rng.randrange(q)
            rhs = (x**3 + x) % q
            if not is_quadratic_residue(rhs, q):
                continue
            y = sqrt_mod(rhs, q)
            if rng.getrandbits(1):
                y = (-y) % q
            return Point(x, y)

    def compressed_byte_length(self) -> int:
        """Bytes needed for a compressed point: x-coordinate plus a tag."""
        return (self.q.bit_length() + 7) // 8 + 1

    def compress(self, point: Point) -> bytes:
        """Encode a point as x-coordinate plus a sign/infinity tag byte."""
        size = (self.q.bit_length() + 7) // 8
        if point.infinite:
            return bytes([2]) + bytes(size)
        tag = point.y & 1
        return bytes([tag]) + point.x.to_bytes(size, "big")

    def decompress(self, data: bytes) -> Point:
        """Invert :meth:`compress`.

        Raises:
            CryptoError: If the encoding is malformed or not on the curve.
        """
        size = (self.q.bit_length() + 7) // 8
        if len(data) != size + 1:
            raise CryptoError(
                f"compressed point must be {size + 1} bytes, got {len(data)}"
            )
        tag = data[0]
        if tag == 2:
            return INFINITY
        if tag not in (0, 1):
            raise CryptoError(f"invalid point tag {tag}")
        x = int.from_bytes(data[1:], "big")
        if x >= self.q:
            raise CryptoError("x-coordinate out of field range")
        rhs = (x**3 + x) % self.q
        if not is_quadratic_residue(rhs, self.q):
            raise CryptoError("x-coordinate is not on the curve")
        y = sqrt_mod(rhs, self.q)
        if y & 1 != tag:
            y = (-y) % self.q
        return Point(x, y)


class FixedBaseTable:
    """Radix-``2^w`` windowing table for a fixed base point.

    For a base ``P`` and scalars up to *max_bits* bits, precomputes
    ``rows[j][d-1] = d·2^{wj}·P`` (affine) for every window ``j`` and digit
    ``d ∈ [1, 2^w)``.  A scalar multiplication then writes the scalar in
    base ``2^w`` and performs one mixed addition per non-zero digit —
    ``⌈max_bits/w⌉`` additions and **zero** doublings, versus ~``max_bits``
    doublings plus ~``max_bits/2`` additions for double-and-add.

    Memory: ``⌈max_bits/w⌉ · (2^w - 1)`` affine points (two field elements
    each) — ≈ 1.9 KiB per base at 80-bit scalars, ``w = 4``, 64-bit fields.
    Build cost amortizes after roughly three scalar multiplications; the
    whole table is normalized to affine with a single batched inversion.
    """

    __slots__ = ("curve", "window", "max_bits", "_rows")

    def __init__(
        self,
        curve: SupersingularCurve,
        point: Point,
        max_bits: int,
        window: int = 4,
    ):
        """Precompute the table for *point* (``w = window``).

        Raises:
            CryptoError: If *window* or *max_bits* is not positive.
        """
        if window < 1 or max_bits < 1:
            raise CryptoError("fixed-base table needs positive window/bits")
        self.curve = curve
        self.window = window
        self.max_bits = max_bits
        q = curve.q
        windows = (max_bits + window - 1) // window
        per_row = (1 << window) - 1
        jacs: list[tuple[int, int, int]] = []
        base = jac_from_affine(point)
        for _ in range(windows):
            entry = base
            for _ in range(per_row):
                jacs.append(entry)
                entry = jac_add(entry, base, q)
            for _ in range(window):
                base = jac_double(base, q)
        flat = jac_batch_to_affine(jacs, q)
        self._rows = [
            flat[j * per_row : (j + 1) * per_row] for j in range(windows)
        ]

    def multiply(self, scalar: int) -> Point:
        """Return ``scalar · P`` using only table lookups and mixed adds.

        Raises:
            CryptoError: If *scalar* is negative or exceeds *max_bits* bits.
        """
        if scalar < 0 or scalar.bit_length() > self.max_bits:
            raise CryptoError(
                "scalar out of range for this fixed-base table"
            )
        q = self.curve.q
        mask = (1 << self.window) - 1
        acc = JAC_INFINITY
        j = 0
        while scalar:
            digit = scalar & mask
            if digit:
                entry = self._rows[j][digit - 1]
                if not entry.infinite:
                    acc = jac_add_mixed(acc, entry.x, entry.y, q)
            scalar >>= self.window
            j += 1
        return jac_to_affine(acc, q)
