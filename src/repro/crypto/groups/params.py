"""Type-A1 composite-order pairing parameters.

PBC's "Type A1" parameters instantiate a composite-order symmetric pairing:
given the desired group order ``N`` (here ``N = p1·p2·p3·p4``), find a
cofactor ``l`` such that ``q = l·N - 1`` is prime with ``q ≡ 3 (mod 4)``.
The supersingular curve ``y² = x³ + x`` over ``F_q`` then has ``q + 1 = l·N``
points and contains a cyclic subgroup of order ``N``.

Because ``N`` is odd, ``q ≡ 3 (mod 4)`` forces ``l ≡ 0 (mod 4)``; we search
cofactors ``l = 4, 8, 12, …``.

Sizing: SSW's match test reduces the inner product modulo the payload prime
``p2``, so correctness (no false positives) requires ``p2`` to exceed the
largest honest inner-product magnitude.  :func:`params_for_bound` sizes
``p2`` from that bound, which the CRSE layers compute from the data space
(see :meth:`repro.core.geometry.DataSpace.inner_product_bound` and the CRSE-I
product bound).  The paper runs 512-bit-class fields for security; the
reproduction defaults to smaller fields for pure-Python speed and reports
sizes at both levels (see :mod:`repro.crypto.serialize`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ParameterError
from repro.math.primes import is_prime, random_prime

__all__ = [
    "PairingParams",
    "generate_params",
    "params_for_bound",
    "toy_params",
    "default_test_params",
]


@dataclass(frozen=True)
class PairingParams:
    """Concrete Type-A1 parameters.

    Attributes:
        subgroup_primes: The four distinct subgroup primes
            ``(p1, p2, p3, p4)`` in SSW role order (cancellation, payload,
            ciphertext noise, token noise).
        cofactor: The multiplier ``l`` with ``q = l·N - 1``.
        field_prime: The field characteristic ``q``.
    """

    subgroup_primes: tuple[int, int, int, int]
    cofactor: int
    field_prime: int

    @property
    def group_order(self) -> int:
        """The composite order ``N = p1·p2·p3·p4``."""
        n = 1
        for p in self.subgroup_primes:
            n *= p
        return n

    def validate(self) -> None:
        """Sanity-check the algebraic relations.

        Raises:
            ParameterError: If any Type-A1 invariant fails.
        """
        primes = self.subgroup_primes
        if len(set(primes)) != 4:
            raise ParameterError("subgroup primes must be pairwise distinct")
        for p in primes:
            if not is_prime(p):
                raise ParameterError(f"{p} is not prime")
        n = self.group_order
        if self.field_prime != self.cofactor * n - 1:
            raise ParameterError("field prime must equal cofactor*N - 1")
        if self.field_prime % 4 != 3:
            raise ParameterError("field prime must be 3 (mod 4)")
        if not is_prime(self.field_prime):
            raise ParameterError("field prime is not prime")


def generate_params(
    subgroup_bits: tuple[int, int, int, int] = (16, 16, 16, 16),
    rng: random.Random | None = None,
    max_cofactor: int = 1 << 20,
) -> PairingParams:
    """Generate fresh Type-A1 parameters.

    Args:
        subgroup_bits: Bit lengths of the four subgroup primes, in SSW role
            order (the payload prime ``p2`` is index 1).
        rng: Optional random source for reproducibility; defaults to the
            OS CSPRNG (the subgroup primes are secret key material).
        max_cofactor: Give up (and resample the primes) once the cofactor
            search exceeds this value.

    Returns:
        Validated :class:`PairingParams`.
    """
    rng = rng or random.SystemRandom()
    while True:
        primes: list[int] = []
        for bits in subgroup_bits:
            while True:
                p = random_prime(bits, rng)
                if p not in primes:
                    primes.append(p)
                    break
        n = primes[0] * primes[1] * primes[2] * primes[3]
        cofactor = 4
        while cofactor <= max_cofactor:
            q = cofactor * n - 1
            if q % 4 == 3 and is_prime(q):
                params = PairingParams(tuple(primes), cofactor, q)
                params.validate()
                return params
            cofactor += 4


def params_for_bound(
    bound: int,
    noise_bits: int = 24,
    rng: random.Random | None = None,
) -> PairingParams:
    """Generate parameters whose payload prime exceeds *bound*.

    Args:
        bound: The largest honest inner-product magnitude the scheme will
            produce; the payload prime ``p2`` is sized to strictly exceed it
            (no false positives).
        noise_bits: Bit length for the three non-payload primes.
        rng: Optional random source.

    Raises:
        ParameterError: If *bound* is negative.
    """
    if bound < 0:
        raise ParameterError("inner-product bound must be non-negative")
    payload_bits = max(bound.bit_length() + 1, 3)
    return generate_params(
        (noise_bits, payload_bits, noise_bits, noise_bits), rng
    )


@lru_cache(maxsize=None)
def toy_params(seed: int = 1) -> PairingParams:
    """Small, deterministic parameters for tests (16-bit subgroup primes)."""
    # Deterministic by contract: test/benchmark parameters, never deployed.
    # reprolint: ignore[CRS001]
    return generate_params(rng=random.Random(seed))


@lru_cache(maxsize=None)
def default_test_params(seed: int = 7) -> PairingParams:
    """Deterministic parameters with a 40-bit payload prime.

    Large enough for CRSE-II over data spaces with coordinates up to about
    ``2^18`` (inner products stay below ``8·T²``), still fast in pure Python.
    """
    # Deterministic by contract: test/benchmark parameters, never deployed.
    # reprolint: ignore[CRS001]
    return generate_params((20, 40, 20, 20), rng=random.Random(seed))
