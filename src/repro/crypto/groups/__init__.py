"""Composite-order bilinear groups: real pairing backend and fast simulation."""

from repro.crypto.groups.base import (
    NUM_SUBGROUPS,
    SUBGROUP_P,
    SUBGROUP_Q,
    SUBGROUP_R,
    SUBGROUP_S,
    CompositeBilinearGroup,
    GroupElement,
    TargetElement,
)
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import SupersingularPairingGroup
from repro.crypto.groups.params import (
    PairingParams,
    default_test_params,
    generate_params,
    params_for_bound,
    toy_params,
)

__all__ = [
    "NUM_SUBGROUPS",
    "SUBGROUP_P",
    "SUBGROUP_Q",
    "SUBGROUP_R",
    "SUBGROUP_S",
    "CompositeBilinearGroup",
    "FastCompositeGroup",
    "GroupElement",
    "PairingParams",
    "SupersingularPairingGroup",
    "TargetElement",
    "default_test_params",
    "generate_params",
    "params_for_bound",
    "toy_params",
]
