"""The on-disk frame format of the append-only record log.

A segment file is a fixed 8-byte magic (``CRSESEG1``) followed by frames.
Every frame is self-checking and length-prefixed::

    ┌──────────────┬──────────────┬──────────────────────────┐
    │ length  (4B) │ crc32   (4B) │ body  (``length`` bytes) │
    └──────────────┴──────────────┴──────────────────────────┘

``length`` counts the body only; ``crc32`` (:func:`zlib.crc32`) covers the
body only, so a frame can be validated without trusting anything outside
it.  ``body[0]`` is the frame type:

* **record** (``0x01``) — one encrypted record exactly as it travels on
  the wire: ``id (8B) | payload len (4B) | payload | content len (4B) |
  content``, optionally followed by ``tag len (4B) | tag | mtag len
  (4B) | mtag`` when the record carries result-integrity tags
  (:mod:`repro.integrity`).  ``payload`` is the
  :mod:`repro.cloud.codec` ciphertext bytes, ``content`` the
  AEAD-encrypted body, the tags opaque owner-minted MACs — the store
  holds only what the untrusted server already sees.  A frame may end
  at either boundary, so pre-integrity segments replay unchanged.
* **tombstone** (``0x02``) — one delete request: ``count (4B) | count ×
  id (8B)``.  Tombstones are atomic on their own (a single frame).
* **commit** (``0x03``) — closes one upload batch: ``flags (1B) |
  record count (4B)``.  Record frames only take effect once a commit
  frame follows them, which makes a multi-record upload atomic: a crash
  between the records and the commit leaves an uncommitted batch that
  recovery discards — exactly the writes the client was never acked for.
  Flag bit 0 marks a compaction batch, which does not count as a logical
  upload (compaction rewrites history, it does not add to it).

All integers are big-endian and unsigned.  :func:`scan_segment` parses a
whole segment defensively and never raises on damaged bytes — it reports
*how* the data is damaged (``torn`` for a truncated tail, ``corrupt`` for
everything else) so the caller can decide whether truncation is a legal
recovery (active segment) or evidence of real corruption (sealed
segment).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Union

from repro.errors import StorageError

__all__ = [
    "SEGMENT_MAGIC",
    "FRAME_RECORD",
    "FRAME_TOMBSTONE",
    "FRAME_COMMIT",
    "MAX_FRAME_BYTES",
    "FRAME_HEADER_BYTES",
    "RecordFrame",
    "TombstoneFrame",
    "CommitFrame",
    "Frame",
    "encode_record_frame",
    "encode_tombstone_frame",
    "encode_commit_frame",
    "encode_frame",
    "scan_segment",
    "SegmentScan",
]

SEGMENT_MAGIC = b"CRSESEG1"

FRAME_RECORD = 0x01
FRAME_TOMBSTONE = 0x02
FRAME_COMMIT = 0x03

_COMMIT_FLAG_COMPACTION = 0x01

#: Hard ceiling on one frame body — same bound as the wire protocol's
#: frame ceiling, for the same reason: a damaged length prefix must not
#: drive an attempt to buffer an absurd allocation.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Bytes of length prefix + CRC preceding every frame body.
FRAME_HEADER_BYTES = 8

_LEN_BYTES = 4
_CRC_BYTES = 4
_ID_BYTES = 8
_COUNT_BYTES = 4


@dataclass(frozen=True)
class RecordFrame:
    """One encrypted record as logged (codec bytes, never plaintext).

    ``tag``/``mtag`` are the optional result-integrity MACs; both are
    empty for records logged before the integrity layer existed.
    """

    identifier: int
    payload: bytes
    content: bytes = b""
    tag: bytes = b""
    mtag: bytes = b""


@dataclass(frozen=True)
class TombstoneFrame:
    """One delete request: the identifiers it asked to remove."""

    identifiers: tuple[int, ...]


@dataclass(frozen=True)
class CommitFrame:
    """Closes a batch of record frames, making them durable as a unit."""

    record_count: int
    compaction: bool = False


Frame = Union[RecordFrame, TombstoneFrame, CommitFrame]


def _u32(value: int) -> bytes:
    return value.to_bytes(_COUNT_BYTES, "big")


def _u64(value: int) -> bytes:
    return value.to_bytes(_ID_BYTES, "big")


def encode_frame(body: bytes) -> bytes:
    """Wrap a frame *body* in the length + CRC32 header.

    Raises:
        StorageError: If the body is empty or exceeds the frame ceiling.
    """
    if not body:
        raise StorageError("refusing to encode an empty frame")
    if len(body) > MAX_FRAME_BYTES:
        raise StorageError(
            f"frame of {len(body)} bytes exceeds limit {MAX_FRAME_BYTES}"
        )
    return _u32(len(body)) + _u32(zlib.crc32(body)) + body


def encode_record_frame(
    identifier: int,
    payload: bytes,
    content: bytes = b"",
    tag: bytes = b"",
    mtag: bytes = b"",
) -> bytes:
    """Encode one record frame.

    The tag trailer is written only when a tag is present, so untagged
    records encode byte-for-byte as they did before the integrity layer.

    Raises:
        StorageError: For a negative or oversized identifier, or a
            payload/content pair that exceeds the frame ceiling.
    """
    if identifier < 0 or identifier >= 1 << 64:
        raise StorageError(f"record identifier {identifier} out of range")
    parts = [
        bytes([FRAME_RECORD]),
        _u64(identifier),
        _u32(len(payload)),
        payload,
        _u32(len(content)),
        content,
    ]
    if tag or mtag:
        parts.extend((_u32(len(tag)), tag, _u32(len(mtag)), mtag))
    return encode_frame(b"".join(parts))


def encode_tombstone_frame(identifiers: tuple[int, ...]) -> bytes:
    """Encode one tombstone frame covering *identifiers*.

    Raises:
        StorageError: For an empty id list or an out-of-range identifier.
    """
    if not identifiers:
        raise StorageError("tombstone frame needs at least one identifier")
    for identifier in identifiers:
        if identifier < 0 or identifier >= 1 << 64:
            raise StorageError(
                f"record identifier {identifier} out of range"
            )
    body = b"".join(
        (
            bytes([FRAME_TOMBSTONE]),
            _u32(len(identifiers)),
            *(_u64(identifier) for identifier in identifiers),
        )
    )
    return encode_frame(body)


def encode_commit_frame(record_count: int, compaction: bool = False) -> bytes:
    """Encode the commit frame closing a batch of *record_count* records."""
    if record_count < 0:
        raise StorageError("commit frame cannot cover a negative batch")
    flags = _COMMIT_FLAG_COMPACTION if compaction else 0
    body = bytes([FRAME_COMMIT, flags]) + _u32(record_count)
    return encode_frame(body)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class _Malformed(Exception):
    """Internal: a fully-present frame body does not decode."""


def _decode_body(body: bytes) -> Frame:
    kind = body[0]
    if kind == FRAME_RECORD:
        offset = 1
        if len(body) < offset + _ID_BYTES + _COUNT_BYTES:
            raise _Malformed("record frame too short")
        identifier = int.from_bytes(body[offset : offset + _ID_BYTES], "big")
        offset += _ID_BYTES
        payload_len = int.from_bytes(
            body[offset : offset + _COUNT_BYTES], "big"
        )
        offset += _COUNT_BYTES
        if len(body) < offset + payload_len + _COUNT_BYTES:
            raise _Malformed("record payload overruns its frame")
        payload = body[offset : offset + payload_len]
        offset += payload_len
        content_len = int.from_bytes(
            body[offset : offset + _COUNT_BYTES], "big"
        )
        offset += _COUNT_BYTES
        if len(body) < offset + content_len:
            raise _Malformed("record content length disagrees with frame")
        content = body[offset : offset + content_len]
        offset += content_len
        if len(body) == offset:
            return RecordFrame(
                identifier=identifier, payload=payload, content=content
            )
        # Tag trailer: tag len | tag | mtag len | mtag, ending the frame.
        if len(body) < offset + _COUNT_BYTES:
            raise _Malformed("record tag trailer is truncated")
        tag_len = int.from_bytes(body[offset : offset + _COUNT_BYTES], "big")
        offset += _COUNT_BYTES
        if len(body) < offset + tag_len + _COUNT_BYTES:
            raise _Malformed("record tag overruns its frame")
        tag = body[offset : offset + tag_len]
        offset += tag_len
        mtag_len = int.from_bytes(body[offset : offset + _COUNT_BYTES], "big")
        offset += _COUNT_BYTES
        if len(body) != offset + mtag_len:
            raise _Malformed("record mtag length disagrees with frame")
        return RecordFrame(
            identifier=identifier,
            payload=payload,
            content=content,
            tag=tag,
            mtag=body[offset : offset + mtag_len],
        )
    if kind == FRAME_TOMBSTONE:
        if len(body) < 1 + _COUNT_BYTES:
            raise _Malformed("tombstone frame too short")
        count = int.from_bytes(body[1 : 1 + _COUNT_BYTES], "big")
        expected = 1 + _COUNT_BYTES + count * _ID_BYTES
        if count == 0 or len(body) != expected:
            raise _Malformed("tombstone id list disagrees with frame")
        identifiers = tuple(
            int.from_bytes(
                body[
                    1 + _COUNT_BYTES + i * _ID_BYTES :
                    1 + _COUNT_BYTES + (i + 1) * _ID_BYTES
                ],
                "big",
            )
            for i in range(count)
        )
        return TombstoneFrame(identifiers=identifiers)
    if kind == FRAME_COMMIT:
        if len(body) != 2 + _COUNT_BYTES:
            raise _Malformed("commit frame has the wrong size")
        return CommitFrame(
            record_count=int.from_bytes(body[2:], "big"),
            compaction=bool(body[1] & _COMMIT_FLAG_COMPACTION),
        )
    raise _Malformed(f"unknown frame type 0x{kind:02x}")


@dataclass
class SegmentScan:
    """Outcome of defensively parsing one segment's bytes.

    Attributes:
        frames: ``(offset, frame)`` pairs for every valid frame, in file
            order.  ``offset`` is the byte position of the frame's length
            prefix.
        consumed: Length of the valid prefix — everything before this
            offset parsed cleanly.  On a torn tail this is the truncation
            point that recovers the segment.
        damage: ``None`` when the whole segment parsed, ``"torn"`` when
            the file ends mid-frame (the append-only crash artifact), or
            ``"corrupt"`` for anything else (CRC mismatch on a full
            frame, bad magic, impossible lengths, unknown types).
        detail: Human-readable description of the damage.
    """

    frames: list[tuple[int, Frame]] = field(default_factory=list)
    consumed: int = 0
    damage: str | None = None
    detail: str = ""


def scan_segment(data: bytes) -> SegmentScan:
    """Parse one segment's bytes into frames, classifying any damage.

    Never raises on bad bytes: the caller interprets ``damage`` according
    to whether the segment is sealed (any damage is corruption) or active
    (a torn tail is recoverable by truncating to ``consumed``).
    """
    scan = SegmentScan()
    magic_len = len(SEGMENT_MAGIC)
    if len(data) < magic_len:
        if data == SEGMENT_MAGIC[: len(data)]:
            # A crash during segment creation: the magic itself is torn.
            scan.damage = "torn"
            scan.detail = "segment header is incomplete"
            return scan
        scan.damage = "corrupt"
        scan.detail = "segment does not start with the CRSESEG1 magic"
        return scan
    if data[:magic_len] != SEGMENT_MAGIC:
        scan.damage = "corrupt"
        scan.detail = "segment does not start with the CRSESEG1 magic"
        return scan
    offset = magic_len
    scan.consumed = offset
    while True:
        remaining = len(data) - offset
        if remaining == 0:
            return scan
        if remaining < FRAME_HEADER_BYTES:
            scan.damage = "torn"
            scan.detail = (
                f"frame header torn at offset {offset} "
                f"({remaining} of {FRAME_HEADER_BYTES} bytes)"
            )
            return scan
        length = int.from_bytes(data[offset : offset + _LEN_BYTES], "big")
        if length == 0 or length > MAX_FRAME_BYTES:
            scan.damage = "corrupt"
            scan.detail = (
                f"implausible frame length {length} at offset {offset}"
            )
            return scan
        if remaining - FRAME_HEADER_BYTES < length:
            scan.damage = "torn"
            scan.detail = (
                f"frame body torn at offset {offset} "
                f"({remaining - FRAME_HEADER_BYTES} of {length} bytes)"
            )
            return scan
        stored_crc = int.from_bytes(
            data[offset + _LEN_BYTES : offset + FRAME_HEADER_BYTES], "big"
        )
        body = data[
            offset + FRAME_HEADER_BYTES : offset + FRAME_HEADER_BYTES + length
        ]
        if zlib.crc32(body) != stored_crc:
            scan.damage = "corrupt"
            scan.detail = f"CRC mismatch at offset {offset}"
            return scan
        try:
            frame = _decode_body(body)
        except _Malformed as exc:
            scan.damage = "corrupt"
            scan.detail = f"malformed frame at offset {offset}: {exc}"
            return scan
        scan.frames.append((offset, frame))
        offset += FRAME_HEADER_BYTES + length
        scan.consumed = offset
