"""The :class:`RecordStore` facade over the segment log.

A ``RecordStore`` is what the service layer talks to: ``append`` a batch
of encrypted records (durable before it returns), ``delete`` by
identifier (a tombstone frame), ``scan`` the live records back for
replay into a search engine, ``snapshot`` operational counters for the
stats verb, and ``compact`` to reclaim tombstoned space.

Trust boundary: the store holds exactly what the untrusted cloud server
already holds — codec ciphertext bytes, AEAD content blobs, and the
*public* scheme header.  The secret key never has a path into this
module, by construction: nothing here accepts a key type.

:func:`verify_store` is the offline, strictly read-only checker behind
``repro store verify``: it opens nothing for writing, repairs nothing,
and reports damage instead of raising, so an operator can inspect a
suspect directory without mutating the evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import StorageCorruptionError, StorageError
from repro.storage.format import (
    CommitFrame,
    RecordFrame,
    TombstoneFrame,
    encode_commit_frame,
    encode_record_frame,
    encode_tombstone_frame,
    scan_segment,
)
from repro.storage.log import (
    DEFAULT_MAX_SEGMENT_BYTES,
    SegmentLog,
    committed_frames,
    has_open_batch,
)
from repro.storage.manifest import Manifest

__all__ = ["RecordStore", "StoreSnapshot", "verify_store"]


@dataclass(frozen=True)
class StoreSnapshot:
    """Operational counters for the stats verb and the CLI.

    ``uploads``/``deletes`` are *logical* request counts and survive
    compaction (the manifest checkpoints them) — they feed the leakage
    log, whose history must not be rewritten by maintenance.
    ``dead_records`` is the compaction opportunity: committed record
    frames whose identifier was later tombstoned or superseded.
    """

    segments: int
    sealed_segments: int
    live_records: int
    records_logged: int
    dead_records: int
    uploads: int
    deletes: int
    compactions: int
    log_bytes: int

    def to_dict(self) -> dict[str, int]:
        """JSON-ready counters for the ``stats`` verb and the CLI."""
        return {
            "segments": self.segments,
            "sealed_segments": self.sealed_segments,
            "live_records": self.live_records,
            "records_logged": self.records_logged,
            "dead_records": self.dead_records,
            "uploads": self.uploads,
            "deletes": self.deletes,
            "compactions": self.compactions,
            "log_bytes": self.log_bytes,
        }


class RecordStore:
    """Durable, append-only store of encrypted records."""

    def __init__(self, log: SegmentLog) -> None:
        self._log = log
        self._live: dict[int, tuple[str, int]] = {}
        self._records_logged = 0
        self._uploads = log.manifest.uploads
        self._deletes = log.manifest.deletes
        self._replay_state()

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        scheme_header: dict[str, Any],
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> RecordStore:
        """Initialise a brand-new store for the given public header."""
        return cls(
            SegmentLog.create(
                Path(directory),
                dict(scheme_header),
                max_segment_bytes=max_segment_bytes,
            )
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        scheme_header: dict[str, Any] | None = None,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> RecordStore:
        """Open an existing store, running crash recovery.

        Raises:
            StorageError: If *scheme_header* is given and does not equal
                the header the store was created for — replaying records
                into a server built for a different scheme would fail in
                confusing ways far from the actual mistake.
        """
        log = SegmentLog.open(
            Path(directory), max_segment_bytes=max_segment_bytes
        )
        if scheme_header is not None and dict(scheme_header) != log.manifest.scheme:
            log.close()
            raise StorageError(
                f"store at {directory} was created for a different scheme "
                "(public header mismatch)"
            )
        return cls(log)

    @classmethod
    def open_or_create(
        cls,
        directory: str | Path,
        scheme_header: dict[str, Any],
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> RecordStore:
        """Open the store at *directory*, creating it if absent."""
        path = Path(directory)
        try:
            return cls.open(
                path,
                scheme_header=scheme_header,
                max_segment_bytes=max_segment_bytes,
            )
        except StorageError as exc:
            if isinstance(exc, StorageCorruptionError):
                raise
            if path.exists() and any(path.iterdir()):
                # Non-empty but unopenable for a non-corruption reason
                # (e.g. scheme mismatch): surface that, don't clobber.
                raise
            return cls.create(
                path, scheme_header, max_segment_bytes=max_segment_bytes
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, records: Iterable[tuple]) -> int:
        """Durably log one upload batch; returns the number of records.

        Each row is ``(identifier, payload, content)`` or the tag-bearing
        ``(identifier, payload, content, tag, mtag)`` — integrity tags
        are logged in the record frame so a replayed shard can rebuild
        its accumulator without re-contacting the owner.

        The batch is atomic: all records plus a commit frame land in one
        fsynced write, so a crash either keeps the whole batch or (after
        recovery) none of it.

        Raises:
            StorageError: For an empty batch, a duplicate identifier
                within the batch, or an identifier that is already live.
        """
        batch = [(row[0], row[1], row[2], *row[3:5]) for row in records]
        if not batch:
            raise StorageError("refusing to log an empty upload batch")
        seen: set[int] = set()
        for row in batch:
            identifier = row[0]
            if identifier in seen:
                raise StorageError(
                    f"duplicate identifier {identifier} in upload batch"
                )
            if identifier in self._live:
                raise StorageError(
                    f"record {identifier} already exists in the store"
                )
            seen.add(identifier)
        frames = [encode_record_frame(*row) for row in batch]
        frames.append(encode_commit_frame(len(batch)))
        positions = self._log.append_frames(frames)
        for row, position in zip(batch, positions):
            self._live[row[0]] = position
        self._records_logged += len(batch)
        self._uploads += 1
        return len(batch)

    def delete(self, identifiers: Iterable[int]) -> int:
        """Durably log one delete request; returns how many were live.

        The tombstone names every requested identifier (present or not)
        so a replay reproduces the server's leakage log exactly — the
        in-memory server counts a delete request even when it removes
        nothing.
        """
        ids = tuple(dict.fromkeys(identifiers))
        if not ids:
            return 0
        self._log.append_frames([encode_tombstone_frame(ids)])
        removed = 0
        for identifier in ids:
            if self._live.pop(identifier, None) is not None:
                removed += 1
        self._deletes += 1
        return removed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield every live record as ``(identifier, payload, content)``.

        Streams segment by segment in log order; a record frame is
        yielded only if it is the winning (live) frame for its
        identifier.
        """
        for identifier, payload, content, _, _ in self.scan_tagged():
            yield identifier, payload, content

    def scan_tagged(
        self,
    ) -> Iterator[tuple[int, bytes, bytes, bytes, bytes]]:
        """Yield live records with their integrity tags.

        Like :meth:`scan` but each row is ``(identifier, payload,
        content, tag, mtag)``; the tags are empty for records logged
        before the integrity layer.
        """
        for name, offset, frame in self._log.replay():
            if isinstance(frame, RecordFrame) and self._live.get(
                frame.identifier
            ) == (name, offset):
                yield (
                    frame.identifier,
                    frame.payload,
                    frame.content,
                    frame.tag,
                    frame.mtag,
                )

    def snapshot(self) -> StoreSnapshot:
        """Point-in-time counters (record, segment, and byte totals)."""
        sizes = self._log.segment_sizes()
        return StoreSnapshot(
            segments=len(self._log.manifest.segments),
            sealed_segments=sum(
                1 for e in self._log.manifest.segments if e.sealed
            ),
            live_records=len(self._live),
            records_logged=self._records_logged,
            dead_records=self._records_logged - len(self._live),
            uploads=self._uploads,
            deletes=self._deletes,
            compactions=self._log.manifest.compactions,
            log_bytes=sum(sizes.values()),
        )

    @property
    def scheme_header(self) -> dict[str, Any]:
        return dict(self._log.manifest.scheme)

    @property
    def record_count(self) -> int:
        return len(self._live)

    @property
    def uploads(self) -> int:
        """Logical upload batches logged, surviving compaction."""
        return self._uploads

    @property
    def deletes(self) -> int:
        """Logical delete requests logged, surviving compaction."""
        return self._deletes

    @property
    def directory(self) -> Path:
        return self._log.directory

    def checkpoint_integrity(self, checkpoint: dict[str, Any]) -> None:
        """Persist the shard's integrity-accumulator state in the manifest.

        Atomically rewrites ``MANIFEST.json`` with the given
        ``root``/``count``/``version`` dict so the accumulator survives
        restarts as advisory state for ``stats`` and the offline audit.
        """
        self._log.manifest.integrity = dict(checkpoint)
        self._log.manifest.write(self._log.directory)

    @property
    def integrity_checkpoint(self) -> dict[str, Any] | None:
        """The last checkpointed accumulator state, if any."""
        checkpoint = self._log.manifest.integrity
        return None if checkpoint is None else dict(checkpoint)

    def compact(self) -> StoreSnapshot:
        """Drop dead records by rewriting live ones; see compact.py."""
        from repro.storage.compact import compact_store

        compact_store(self)
        return self.snapshot()

    def close(self) -> None:
        """Fsync and close the underlying log (idempotent)."""
        self._log.close()

    def __enter__(self) -> RecordStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _replay_state(self) -> None:
        """Rebuild live-record and counter state with one strict replay."""
        self._live.clear()
        self._records_logged = 0
        self._uploads = self._log.manifest.uploads
        self._deletes = self._log.manifest.deletes
        for name, offset, frame in self._log.replay():
            if isinstance(frame, RecordFrame):
                self._live[frame.identifier] = (name, offset)
                self._records_logged += 1
            elif isinstance(frame, TombstoneFrame):
                for identifier in frame.identifiers:
                    self._live.pop(identifier, None)
                self._deletes += 1
            elif isinstance(frame, CommitFrame) and not frame.compaction:
                self._uploads += 1


def verify_store(directory: str | Path) -> dict[str, Any]:
    """Check a store directory without writing a single byte to it.

    Returns a report dict::

        {"clean": bool, "directory": str,
         "segments": [{"name", "sealed", "bytes", "frames", "status",
                       "detail"}, ...],
         "errors": [...], "warnings": [...]}

    ``errors`` (corruption, missing files) make the store unopenable;
    ``warnings`` (torn tail, uncommitted trailing batch in the active
    segment, orphan files) are repaired automatically on the next open.
    ``clean`` is true only when both lists are empty.
    """
    path = Path(directory)
    report: dict[str, Any] = {
        "clean": False,
        "directory": str(path),
        "segments": [],
        "errors": [],
        "warnings": [],
    }
    try:
        manifest = Manifest.load(path)
    except StorageError as exc:
        report["errors"].append(str(exc))
        return report

    listed = set(manifest.segment_names())
    for entry_path in sorted(path.iterdir()):
        name = entry_path.name
        if name not in listed and name != "MANIFEST.json":
            report["warnings"].append(
                f"orphan file {name} (removed on next open)"
            )

    for index, entry in enumerate(manifest.segments):
        is_active = index == len(manifest.segments) - 1
        seg_report: dict[str, Any] = {
            "name": entry.name,
            "sealed": entry.sealed,
            "bytes": 0,
            "frames": 0,
            "status": "ok",
            "detail": "",
        }
        report["segments"].append(seg_report)
        seg_path = path / entry.name
        try:
            data = seg_path.read_bytes()
        except FileNotFoundError:
            seg_report["status"] = "missing"
            report["errors"].append(
                f"manifest names segment {entry.name} but the file is missing"
            )
            continue
        seg_report["bytes"] = len(data)
        scan = scan_segment(data)
        seg_report["frames"] = len(scan.frames)
        structural: str | None = None
        try:
            committed_frames(scan, where=f"segment {entry.name}")
        except StorageCorruptionError as exc:
            structural = str(exc)
        open_batch = has_open_batch(scan)
        if scan.damage == "corrupt" or structural is not None:
            detail = scan.detail if scan.damage == "corrupt" else structural
            seg_report["status"] = "corrupt"
            seg_report["detail"] = detail
            report["errors"].append(f"segment {entry.name}: {detail}")
        elif scan.damage == "torn" or open_batch:
            detail = scan.detail or "trailing uncommitted record batch"
            seg_report["detail"] = detail
            if is_active:
                seg_report["status"] = "torn tail"
                report["warnings"].append(
                    f"active segment {entry.name}: {detail} "
                    "(truncated on next open)"
                )
            else:
                seg_report["status"] = "corrupt"
                report["errors"].append(
                    f"sealed segment {entry.name}: {detail}"
                )

    report["clean"] = not report["errors"] and not report["warnings"]
    return report
