"""Segment files: creation, recovery, rotation, and strict replay.

A :class:`SegmentLog` owns a data directory: the manifest, a list of
sealed (immutable) segments, and one active segment appended to in
append mode.  Durability contract: :meth:`append_frames` only returns
after the bytes are fsynced, so a caller may ack a client the moment it
returns.

Crash recovery happens in :meth:`open`:

* Segment files on disk that the manifest does not name are deleted —
  they are artifacts of a compaction that crashed before its atomic
  manifest replace (the replace is compaction's commit point).
* A segment the manifest names but the directory lacks is corruption.
* The *active* segment's tail is repaired: a torn final frame is
  truncated away, and so is any trailing record batch that never got its
  commit frame — those writes were never acked, so dropping them is the
  correct (and only safe) recovery.
* Any damage inside a *sealed* segment is corruption: sealed segments
  were fsynced before sealing, so nothing short of external interference
  explains a bad byte there.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Iterator

from repro.errors import StorageCorruptionError, StorageError
from repro.storage.format import (
    SEGMENT_MAGIC,
    CommitFrame,
    Frame,
    RecordFrame,
    SegmentScan,
    TombstoneFrame,
    scan_segment,
)
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    SegmentEntry,
    fsync_directory,
)

__all__ = [
    "SegmentLog",
    "DEFAULT_MAX_SEGMENT_BYTES",
    "committed_frames",
    "has_open_batch",
]

#: Rotate the active segment once it grows past this many bytes.  Small
#: enough that compaction touches bounded chunks, large enough that a
#: realistic dataset stays in a handful of segments.
DEFAULT_MAX_SEGMENT_BYTES = 64 * 1024 * 1024

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(name: str) -> int:
    stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise StorageCorruptionError(
            f"segment name {name!r} does not follow seg-NNNNNNNN.log"
        ) from None


def committed_frames(
    scan: SegmentScan, *, where: str
) -> list[tuple[int, Frame]]:
    """Filter one segment's scan down to the frames that took effect.

    Record frames count only once a commit frame follows them; the
    trailing uncommitted batch (if any) is excluded.  Tombstones and
    commits always count.

    Raises:
        StorageCorruptionError: For structurally impossible sequences — a
            tombstone interleaved into an open record batch, or a commit
            whose record count disagrees with the frames before it.
            Neither can result from a torn tail of our own writer (each
            batch lands in one contiguous write), so both mean the bytes
            were altered.
    """
    applied: list[tuple[int, Frame]] = []
    pending: list[tuple[int, Frame]] = []
    for offset, frame in scan.frames:
        if isinstance(frame, RecordFrame):
            pending.append((offset, frame))
        elif isinstance(frame, TombstoneFrame):
            if pending:
                raise StorageCorruptionError(
                    f"{where}: tombstone at offset {offset} interrupts an "
                    f"open record batch of {len(pending)}"
                )
            applied.append((offset, frame))
        else:  # CommitFrame
            if frame.record_count != len(pending):
                raise StorageCorruptionError(
                    f"{where}: commit at offset {offset} claims "
                    f"{frame.record_count} records but {len(pending)} "
                    "precede it"
                )
            applied.extend(pending)
            applied.append((offset, frame))
            pending.clear()
    return applied


def _stable_end(scan: SegmentScan) -> int:
    """Byte offset just past the last committed frame (truncation point)."""
    stable = len(SEGMENT_MAGIC)
    for index, (_, frame) in enumerate(scan.frames):
        if isinstance(frame, (CommitFrame, TombstoneFrame)):
            if index + 1 < len(scan.frames):
                stable = scan.frames[index + 1][0]
            else:
                stable = scan.consumed
    return stable


def has_open_batch(scan: SegmentScan) -> bool:
    """True when the parsed frames end inside an uncommitted batch."""
    open_records = 0
    for _, frame in scan.frames:
        if isinstance(frame, RecordFrame):
            open_records += 1
        elif isinstance(frame, CommitFrame):
            open_records = 0
    return open_records > 0


class SegmentLog:
    """The append-only multi-segment log behind :class:`RecordStore`."""

    def __init__(
        self,
        directory: Path,
        manifest: Manifest,
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> None:
        self.directory = directory
        self.manifest = manifest
        self.max_segment_bytes = max_segment_bytes
        self._active_handle: IO[bytes] | None = None
        self._active_size = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: Path,
        scheme: dict,
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> SegmentLog:
        """Initialise a fresh store directory (which must be empty)."""
        directory.mkdir(parents=True, exist_ok=True)
        leftovers = sorted(p.name for p in directory.iterdir())
        if MANIFEST_NAME in leftovers:
            raise StorageError(f"{directory} already contains a record store")
        if leftovers:
            raise StorageError(
                f"refusing to create a store in non-empty {directory} "
                f"(found {leftovers[:3]})"
            )
        manifest = Manifest(
            scheme=scheme,
            segments=[SegmentEntry(name=_segment_name(1))],
        )
        log = cls(directory, manifest, max_segment_bytes=max_segment_bytes)
        log._create_segment_file(manifest.active.name)
        manifest.write(directory)
        log._open_active()
        return log

    @classmethod
    def open(
        cls,
        directory: Path,
        *,
        max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
    ) -> SegmentLog:
        """Open an existing store, running crash recovery on its tail."""
        manifest = Manifest.load(directory)
        log = cls(directory, manifest, max_segment_bytes=max_segment_bytes)
        log._remove_orphans()
        for entry in manifest.segments:
            if not (directory / entry.name).exists():
                raise StorageCorruptionError(
                    f"manifest names segment {entry.name} "
                    "but the file is missing"
                )
        log._recover()
        log._open_active()
        return log

    def close(self) -> None:
        """Fsync and close the active segment handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._active_handle is not None:
            self._active_handle.flush()
            os.fsync(self._active_handle.fileno())
            self._active_handle.close()
            self._active_handle = None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_frames(self, encoded: list[bytes]) -> list[tuple[str, int]]:
        """Append pre-encoded frames and fsync; returns each frame's home.

        The whole list lands in one segment (rotation only happens at
        batch boundaries), so a commit frame can never end up in a
        different file from the record frames it covers.
        """
        if self._closed or self._active_handle is None:
            raise StorageError("segment log is closed")
        if not encoded:
            return []
        if self._active_size >= self.max_segment_bytes:
            self.rotate()
        assert self._active_handle is not None
        name = self.manifest.active.name
        positions: list[tuple[str, int]] = []
        offset = self._active_size
        for frame_bytes in encoded:
            positions.append((name, offset))
            offset += len(frame_bytes)
        self._active_handle.write(b"".join(encoded))
        self._active_handle.flush()
        os.fsync(self._active_handle.fileno())
        self._active_size = offset
        return positions

    def rotate(self) -> None:
        """Seal the active segment and start a new one."""
        if self._closed or self._active_handle is None:
            raise StorageError("segment log is closed")
        self._active_handle.flush()
        os.fsync(self._active_handle.fileno())
        self._active_handle.close()
        self._active_handle = None
        self.manifest.active.sealed = True
        next_index = (
            max(_segment_index(e.name) for e in self.manifest.segments) + 1
        )
        new_entry = SegmentEntry(name=_segment_name(next_index))
        self._create_segment_file(new_entry.name)
        self.manifest.segments.append(new_entry)
        self.manifest.write(self.directory)
        self._open_active()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[tuple[str, int, Frame]]:
        """Yield every *committed* frame across all segments, in log order.

        Strict: raises :exc:`StorageCorruptionError` on any damage or any
        uncommitted trailing batch.  The active tail is repaired at
        :meth:`open` time, so a freshly-opened log replays cleanly.
        """
        for entry in self.manifest.segments:
            data = (self.directory / entry.name).read_bytes()
            scan = scan_segment(data)
            if scan.damage is not None:
                raise StorageCorruptionError(
                    f"segment {entry.name}: {scan.detail}"
                )
            if has_open_batch(scan):
                raise StorageCorruptionError(
                    f"segment {entry.name}: trailing uncommitted batch "
                    "(reopen the store to run recovery)"
                )
            for offset, frame in committed_frames(
                scan, where=f"segment {entry.name}"
            ):
                yield entry.name, offset, frame

    def segment_sizes(self) -> dict[str, int]:
        """On-disk byte size of every manifest-listed segment."""
        return {
            entry.name: (self.directory / entry.name).stat().st_size
            for entry in self.manifest.segments
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _create_segment_file(self, name: str) -> None:
        path = self.directory / name
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, SEGMENT_MAGIC)
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(self.directory)

    def _open_active(self) -> None:
        path = self.directory / self.manifest.active.name
        self._active_handle = open(path, "ab")
        self._active_size = path.stat().st_size

    def _remove_orphans(self) -> None:
        """Delete files a crashed compaction left behind.

        Compaction writes its replacement segments, then atomically
        replaces the manifest, then deletes the old files.  A crash
        before the replace strands the new files; a crash after strands
        the old ones.  Either way, anything the manifest does not name is
        dead weight with no committed state.
        """
        listed = set(self.manifest.segment_names())
        removed = False
        for path in self.directory.iterdir():
            name = path.name
            if name == MANIFEST_NAME or name in listed:
                continue
            is_segment = name.startswith(_SEGMENT_PREFIX) and name.endswith(
                _SEGMENT_SUFFIX
            )
            if is_segment or name.endswith(".tmp"):
                path.unlink()
                removed = True
        if removed:
            fsync_directory(self.directory)

    def _recover(self) -> None:
        """Verify sealed segments and repair the active segment's tail."""
        for entry in self.manifest.segments[:-1]:
            data = (self.directory / entry.name).read_bytes()
            scan = scan_segment(data)
            if scan.damage is not None:
                raise StorageCorruptionError(
                    f"sealed segment {entry.name}: {scan.detail}"
                )
            committed_frames(scan, where=f"sealed segment {entry.name}")
            if has_open_batch(scan):
                raise StorageCorruptionError(
                    f"sealed segment {entry.name} ends in an "
                    "uncommitted record batch"
                )

        entry = self.manifest.active
        path = self.directory / entry.name
        data = path.read_bytes()
        scan = scan_segment(data)
        if scan.damage == "corrupt":
            raise StorageCorruptionError(
                f"active segment {entry.name}: {scan.detail}"
            )
        if scan.damage == "torn" and scan.consumed < len(SEGMENT_MAGIC):
            # The segment header itself is torn (crash during creation):
            # rewrite the magic rather than leave a headerless file.
            self._rewrite_empty(path)
            return
        committed_frames(scan, where=f"active segment {entry.name}")
        # A torn frame truncates to the end of the valid prefix; an
        # uncommitted batch truncates further, to the last commit point.
        target = _stable_end(scan) if has_open_batch(scan) else scan.consumed
        if target < len(data):
            os.truncate(path, target)
            fd = os.open(path, os.O_WRONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    @staticmethod
    def _rewrite_empty(path: Path) -> None:
        os.truncate(path, 0)
        fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        try:
            os.write(fd, SEGMENT_MAGIC)
            os.fsync(fd)
        finally:
            os.close(fd)
