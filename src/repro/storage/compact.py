"""Compaction: rewrite live records, drop tombstoned history.

An append-only log only grows; deleting a record adds bytes.  Compaction
reclaims the space by writing the current live set into fresh sealed
segments and atomically swapping the manifest over to them.

Crash-safety hinges on one fact: **the manifest replace is the commit
point**.  The order is

1. write the replacement segments (records + a compaction-flagged
   commit frame each, fsynced, plus a fresh empty active segment),
2. ``os.replace`` the manifest to name only the new segments, with the
   logical upload/delete counters checkpointed (compaction must not
   rewrite leakage-log history),
3. delete the old segment files.

A crash before step 2 leaves unreferenced new files; after step 2,
unreferenced old files.  Either way the next :meth:`SegmentLog.open`
deletes whatever the surviving manifest does not name, and the store
state is exactly one of before/after — never a blend.

The compaction commit frames carry a flag so replay does not count them
as logical uploads: ``store.uploads`` after compaction equals the value
before, which keeps the replayed leakage log identical to the in-memory
server's.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.storage.format import (
    SEGMENT_MAGIC,
    encode_commit_frame,
    encode_record_frame,
)
from repro.storage.log import SegmentLog, _segment_index, _segment_name
from repro.storage.manifest import Manifest, SegmentEntry, fsync_directory

if TYPE_CHECKING:
    from repro.storage.store import RecordStore

__all__ = ["compact_store"]


def compact_store(store: "RecordStore") -> int:
    """Rewrite *store* down to its live records; returns bytes reclaimed.

    Safe to call on a quiescent store only (the service layer serialises
    mutations through its executor, and the CLI operates offline).
    """
    log = store._log
    directory = log.directory
    old_manifest = log.manifest
    old_names = old_manifest.segment_names()
    old_bytes = sum(log.segment_sizes().values())

    next_index = max(_segment_index(name) for name in old_names) + 1
    new_entries: list[SegmentEntry] = []

    # Step 1: write the replacement segments.  Live records stream out of
    # the old segments in log order; each new segment gets one batch plus
    # one compaction-flagged commit frame and is fsynced before sealing.
    writer = _SegmentWriter(log, next_index)
    for identifier, payload, content, tag, mtag in store.scan_tagged():
        writer.add(encode_record_frame(identifier, payload, content, tag, mtag))
    new_entries.extend(writer.finish())
    next_index += len(new_entries)

    # A fresh, empty active segment — compacted segments are born sealed.
    active_entry = SegmentEntry(name=_segment_name(next_index))
    _write_segment_file(log, active_entry.name, [])
    new_entries.append(active_entry)

    # Step 2: the commit point.  Counters checkpoint the logical totals
    # so the frames we just dropped keep counting.
    new_manifest = Manifest(
        scheme=old_manifest.scheme,
        segments=new_entries,
        uploads=store.uploads,
        deletes=store.deletes,
        compactions=old_manifest.compactions + 1,
        integrity=old_manifest.integrity,
    )
    log.close()
    new_manifest.write(directory)
    log.manifest = new_manifest
    log._closed = False

    # Step 3: the old segments are now unreachable garbage.
    for name in old_names:
        (directory / name).unlink()
    fsync_directory(directory)

    log._open_active()
    store._replay_state()
    return old_bytes - sum(log.segment_sizes().values())


class _SegmentWriter:
    """Accumulates record frames into size-bounded sealed segments."""

    def __init__(self, log: SegmentLog, first_index: int) -> None:
        self._log = log
        self._index = first_index
        self._frames: list[bytes] = []
        self._size = len(SEGMENT_MAGIC)
        self._entries: list[SegmentEntry] = []

    def add(self, frame: bytes) -> None:
        if (
            self._frames
            and self._size + len(frame) > self._log.max_segment_bytes
        ):
            self._flush()
        self._frames.append(frame)
        self._size += len(frame)

    def finish(self) -> list[SegmentEntry]:
        if self._frames:
            self._flush()
        return self._entries

    def _flush(self) -> None:
        name = _segment_name(self._index)
        frames = [*self._frames, encode_commit_frame(
            len(self._frames), compaction=True
        )]
        _write_segment_file(self._log, name, frames)
        self._entries.append(
            SegmentEntry(name=name, sealed=True, compacted=True)
        )
        self._index += 1
        self._frames = []
        self._size = len(SEGMENT_MAGIC)


def _write_segment_file(
    log: SegmentLog, name: str, frames: list[bytes]
) -> None:
    path = log.directory / name
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        os.write(fd, SEGMENT_MAGIC + b"".join(frames))
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_directory(log.directory)
