"""The store manifest: segment order, scheme header, and counters.

``MANIFEST.json`` is the root of trust for a data directory.  It names
the segments in replay order, records which are sealed, carries the
*public* scheme header (so a store cannot silently be replayed into a
server built for a different scheme), and checkpoints the logical
upload/delete counters folded away by compaction.

The manifest is always replaced atomically — written to a temp file,
fsynced, ``os.replace``d over the old one, then the directory entry is
fsynced.  A crash at any point leaves either the old manifest or the new
one, never a torn hybrid; this replace is also the commit point of
compaction.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import StorageCorruptionError, StorageError

__all__ = ["MANIFEST_NAME", "SegmentEntry", "Manifest", "fsync_directory"]

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_VERSION = 1


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry so renames/creates inside it are durable."""
    fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class SegmentEntry:
    """One segment file as the manifest sees it."""

    name: str
    sealed: bool = False
    compacted: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for the manifest's ``segments`` list."""
        return {
            "name": self.name,
            "sealed": self.sealed,
            "compacted": self.compacted,
        }


@dataclass
class Manifest:
    """In-memory image of ``MANIFEST.json``.

    Attributes:
        scheme: Public scheme header (:func:`repro.service.schemeio
            .scheme_header` output) the store was created for.
        segments: Segment files in replay order; the last one is the
            active segment and must not be sealed.
        uploads: Checkpoint of logical uploads whose frames were folded
            into compacted segments (compaction rewrites records but must
            not erase leakage-log history).
        deletes: Same checkpoint for logical delete requests.
        compactions: How many compactions this store has survived.
        integrity: Optional checkpoint of the shard's integrity
            accumulator (``root`` hex, ``count``, ``version`` — see
            :class:`repro.integrity.SetAccumulator`), written whenever
            the stored set changes.  Purely advisory state for the
            ``stats`` verb and the offline audit; searches always prove
            against the registry rebuilt from the log itself.
    """

    scheme: dict[str, Any]
    segments: list[SegmentEntry] = field(default_factory=list)
    uploads: int = 0
    deletes: int = 0
    compactions: int = 0
    integrity: dict[str, Any] | None = None

    @property
    def active(self) -> SegmentEntry:
        if not self.segments:
            raise StorageError("manifest lists no segments")
        return self.segments[-1]

    def segment_names(self) -> list[str]:
        """Segment file names in replay order."""
        return [entry.name for entry in self.segments]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole manifest (versioned)."""
        out: dict[str, Any] = {
            "version": _MANIFEST_VERSION,
            "scheme": self.scheme,
            "segments": [entry.to_dict() for entry in self.segments],
            "counters": {"uploads": self.uploads, "deletes": self.deletes},
            "compactions": self.compactions,
        }
        if self.integrity is not None:
            out["integrity"] = self.integrity
        return out

    @classmethod
    def from_dict(cls, raw: Any) -> Manifest:
        if not isinstance(raw, dict):
            raise StorageCorruptionError("manifest is not a JSON object")
        if raw.get("version") != _MANIFEST_VERSION:
            raise StorageCorruptionError(
                f"unsupported manifest version {raw.get('version')!r}"
            )
        scheme = raw.get("scheme")
        if not isinstance(scheme, dict):
            raise StorageCorruptionError("manifest has no scheme header")
        segments_raw = raw.get("segments")
        if not isinstance(segments_raw, list) or not segments_raw:
            raise StorageCorruptionError("manifest lists no segments")
        segments: list[SegmentEntry] = []
        seen: set[str] = set()
        for item in segments_raw:
            if not isinstance(item, dict) or not isinstance(
                item.get("name"), str
            ):
                raise StorageCorruptionError("malformed segment entry")
            name = item["name"]
            if name in seen or os.sep in name or name.startswith("."):
                raise StorageCorruptionError(
                    f"implausible segment name {name!r}"
                )
            seen.add(name)
            segments.append(
                SegmentEntry(
                    name=name,
                    sealed=bool(item.get("sealed", False)),
                    compacted=bool(item.get("compacted", False)),
                )
            )
        if segments[-1].sealed:
            raise StorageCorruptionError(
                "manifest's active (last) segment is marked sealed"
            )
        counters = raw.get("counters", {})
        if not isinstance(counters, dict):
            raise StorageCorruptionError("manifest counters are malformed")
        uploads = counters.get("uploads", 0)
        deletes = counters.get("deletes", 0)
        compactions = raw.get("compactions", 0)
        for label, value in (
            ("uploads", uploads),
            ("deletes", deletes),
            ("compactions", compactions),
        ):
            if not isinstance(value, int) or value < 0:
                raise StorageCorruptionError(
                    f"manifest counter {label!r} is not a non-negative int"
                )
        integrity = raw.get("integrity")
        if integrity is not None:
            if (
                not isinstance(integrity, dict)
                or not isinstance(integrity.get("root"), str)
                or not isinstance(integrity.get("count"), int)
                or not isinstance(integrity.get("version"), int)
                or integrity["count"] < 0
                or integrity["version"] < 0
            ):
                raise StorageCorruptionError(
                    "manifest integrity checkpoint is malformed"
                )
            integrity = {
                "root": integrity["root"],
                "count": integrity["count"],
                "version": integrity["version"],
            }
        return cls(
            scheme=scheme,
            segments=segments,
            uploads=uploads,
            deletes=deletes,
            compactions=compactions,
            integrity=integrity,
        )

    # ------------------------------------------------------------------
    # Disk I/O
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: Path) -> Manifest:
        """Read and validate the manifest in *directory*.

        Raises:
            StorageError: If no manifest exists (the directory is not a
                store).
            StorageCorruptionError: If the manifest exists but does not
                parse or validate.
        """
        path = directory / MANIFEST_NAME
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StorageError(
                f"no record store at {directory} (missing {MANIFEST_NAME})"
            ) from None
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise StorageCorruptionError(
                f"manifest at {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(raw)

    def write(self, directory: Path) -> None:
        """Atomically replace the manifest in *directory* with this one."""
        path = directory / MANIFEST_NAME
        tmp = directory / (MANIFEST_NAME + ".tmp")
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, payload.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        fsync_directory(directory)
