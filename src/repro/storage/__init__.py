"""Durable storage for encrypted records (``repro.storage``).

An append-only segment log of CRC32-checked frames holding the same
codec ciphertext bytes that travel on the wire, plus tombstone frames
for deletes; an atomic-rename manifest tracks segment order and the
public scheme header.  :class:`RecordStore` is the facade the service
layer uses; :func:`verify_store` is the offline read-only checker.

The secret key never touches this package: records enter and leave as
opaque codec bytes, and the only scheme information on disk is the
public header — the exact trust boundary of the wire protocol.
"""

from repro.storage.format import (
    MAX_FRAME_BYTES,
    SEGMENT_MAGIC,
    CommitFrame,
    RecordFrame,
    SegmentScan,
    TombstoneFrame,
    scan_segment,
)
from repro.storage.log import DEFAULT_MAX_SEGMENT_BYTES, SegmentLog
from repro.storage.manifest import MANIFEST_NAME, Manifest, SegmentEntry
from repro.storage.store import RecordStore, StoreSnapshot, verify_store

__all__ = [
    "RecordStore",
    "StoreSnapshot",
    "verify_store",
    "SegmentLog",
    "Manifest",
    "SegmentEntry",
    "SegmentScan",
    "RecordFrame",
    "TombstoneFrame",
    "CommitFrame",
    "scan_segment",
    "SEGMENT_MAGIC",
    "MANIFEST_NAME",
    "MAX_FRAME_BYTES",
    "DEFAULT_MAX_SEGMENT_BYTES",
]
