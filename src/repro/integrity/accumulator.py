"""An XOR set-accumulator over membership tags.

Each shard commits to its stored identifier set with three numbers: the
XOR of all membership tags (the *root*), how many records are stored
(the *count*), and a monotonic *version* bumped on every mutation.  XOR
is the right fold here because it is an involution — adding and removing
a record are the same operation — which makes the accumulator update
O(1) on upload, delete, and compaction alike, and makes the completeness
*complement* (the fold of every tag **not** returned by a search)
computable without touching the matched records.

Security rests on the tags, not the fold: membership tags are HMACs
under a key the server never holds, so the server can only XOR tags the
owner actually minted.  Dropping a matching record unbalances
``complement ⊕ fold(matched) = root``; replaying a pre-delete root
disagrees with the client's expected state.  A zero root with a zero
count is the well-defined empty commitment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IntegrityError
from repro.integrity.tags import TAG_BYTES

__all__ = ["SetAccumulator", "xor_fold", "EMPTY_ROOT"]

#: The commitment to the empty set.
EMPTY_ROOT = bytes(TAG_BYTES)


def xor_fold(tags: Iterable[bytes]) -> bytes:
    """XOR a sequence of 32-byte tags into one 32-byte value.

    Raises:
        IntegrityError: If any tag has the wrong length — folding a
            short tag would silently weaken the commitment.
    """
    acc = bytearray(EMPTY_ROOT)
    for tag in tags:
        if len(tag) != TAG_BYTES:
            raise IntegrityError(
                f"cannot fold a {len(tag)}-byte tag into the accumulator"
            )
        for i, b in enumerate(tag):
            acc[i] ^= b
    return bytes(acc)


@dataclass
class SetAccumulator:
    """Root, count, and version of one shard's stored-identifier set."""

    root: bytes = EMPTY_ROOT
    count: int = 0
    version: int = 0

    def add(self, mtag: bytes) -> None:
        """Fold one membership tag in (a record was stored)."""
        self.root = xor_fold((self.root, mtag))
        self.count += 1
        self.version += 1

    def remove(self, mtag: bytes) -> None:
        """Fold one membership tag out (a record was deleted).

        Raises:
            IntegrityError: If the accumulator is already empty — the
                caller tried to remove a record that was never added.
        """
        if self.count == 0:
            raise IntegrityError("cannot remove from an empty accumulator")
        self.root = xor_fold((self.root, mtag))
        self.count -= 1
        self.version += 1

    def to_dict(self) -> dict:
        """JSON-ready checkpoint form (hex root, plain ints)."""
        return {
            "root": self.root.hex(),
            "count": self.count,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "SetAccumulator":
        """Rebuild an accumulator from :meth:`to_dict` output.

        Raises:
            IntegrityError: On a malformed checkpoint.
        """
        try:
            root = bytes.fromhex(raw["root"])
            count = int(raw["count"])
            version = int(raw["version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(
                f"malformed accumulator checkpoint: {exc}"
            ) from exc
        if len(root) != TAG_BYTES or count < 0 or version < 0:
            raise IntegrityError("implausible accumulator checkpoint")
        return cls(root=root, count=count, version=version)
