"""Result integrity: verifiable search over the untrusted cloud.

The paper's server is semi-honest — trusted to evaluate the SSW test
over *every* stored ciphertext and return *every* match.  This subsystem
removes that trust for results: a lazy, tampering, or truncating server
is *detected* client-side, turning the deployment into verifiable
outsourcing.

Pieces, by module:

* :mod:`~repro.integrity.tags` — owner-derived HMAC keys, the per-record
  authenticity tag, and the identifier-only membership tag;
* :mod:`~repro.integrity.accumulator` — the XOR set-accumulator each
  shard maintains over its membership tags;
* :mod:`~repro.integrity.shard` — the keyless server-side registry that
  answers searches with per-match tags and a constant-size completeness
  proof;
* :mod:`~repro.integrity.verify` — the client-side
  :class:`~repro.integrity.verify.ResultVerifier` and the persistent
  expected-state commitment.

Every detected tamper raises :class:`repro.errors.IntegrityError`.
"""

from repro.integrity.accumulator import EMPTY_ROOT, SetAccumulator, xor_fold
from repro.integrity.shard import ShardIntegrity
from repro.integrity.tags import (
    TAG_BYTES,
    TagKeys,
    header_fingerprint,
    membership_tag,
    payload_digest,
    record_tag,
    verify_record_tag,
)
from repro.integrity.verify import (
    IntegrityState,
    ResultVerifier,
    VerificationReport,
)

__all__ = [
    "TAG_BYTES",
    "EMPTY_ROOT",
    "TagKeys",
    "header_fingerprint",
    "payload_digest",
    "record_tag",
    "membership_tag",
    "verify_record_tag",
    "SetAccumulator",
    "xor_fold",
    "ShardIntegrity",
    "IntegrityState",
    "ResultVerifier",
    "VerificationReport",
]
