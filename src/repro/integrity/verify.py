"""Client-side verification of search results and completeness proofs.

:class:`ResultVerifier` is the trust anchor of the subsystem: it holds
the owner-derived :class:`~repro.integrity.tags.TagKeys` and checks a
search reply's integrity section — whether it came from one shard or
from the coordinator's merge of many — against what the keys alone can
recompute.  Five independent checks must all pass:

1. every matched record's authenticity tag verifies against its
   identifier and reported payload digest (no forged or flipped
   ciphertexts);
2. every per-shard proof digests the exact token the client sent (no
   answering a cheaper query);
3. every shard's ``complement ⊕ fold(matched membership tags)`` equals
   its accumulator root (no silently dropped matches);
4. the match list and the identifier list agree exactly, and no
   identifier is claimed by two shards (no padding or double-counting);
5. against an optional :class:`IntegrityState`, the XOR of shard roots
   and the sum of shard counts equal the client's expected totals (no
   omitted shard, no stale pre-delete replay).

Any failure raises :class:`repro.errors.IntegrityError` naming the check
that failed.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import IntegrityError
from repro.integrity.accumulator import EMPTY_ROOT, xor_fold
from repro.integrity.tags import (
    TAG_BYTES,
    TagKeys,
    membership_tag,
    verify_record_tag,
)

__all__ = ["IntegrityState", "ResultVerifier", "VerificationReport"]


@dataclass
class IntegrityState:
    """The client's own commitment to what the deployment stores.

    Maintained owner/client-side across uploads and deletes, so a
    verification can detect a *globally* consistent but stale answer — a
    replayed pre-delete accumulator, or a whole shard omitted from the
    coordinator's merge.  Serializable so the CLI can persist it between
    invocations.
    """

    root: bytes = EMPTY_ROOT
    count: int = 0

    def note_upload(self, keys: TagKeys, identifiers: Iterable[int]) -> None:
        """Fold freshly uploaded identifiers into the expected state."""
        for identifier in identifiers:
            self.root = xor_fold((self.root, membership_tag(keys, identifier)))
            self.count += 1

    def note_delete(self, keys: TagKeys, identifiers: Iterable[int]) -> None:
        """Fold deleted identifiers out of the expected state.

        Raises:
            IntegrityError: If more identifiers are removed than were
                ever added.
        """
        for identifier in identifiers:
            if self.count == 0:
                raise IntegrityError(
                    "integrity state underflow: delete of a record that "
                    "was never noted as uploaded"
                )
            self.root = xor_fold((self.root, membership_tag(keys, identifier)))
            self.count -= 1

    def to_dict(self) -> dict:
        """JSON-ready form for CLI persistence."""
        return {"root": self.root.hex(), "count": self.count}

    @classmethod
    def from_dict(cls, raw: dict) -> "IntegrityState":
        """Rebuild a state from :meth:`to_dict` output.

        Raises:
            IntegrityError: On a malformed state blob.
        """
        try:
            root = bytes.fromhex(raw["root"])
            count = int(raw["count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed integrity state: {exc}") from exc
        if len(root) != TAG_BYTES or count < 0:
            raise IntegrityError("implausible integrity state")
        return cls(root=root, count=count)


@dataclass(frozen=True)
class VerificationReport:
    """What a successful verification established."""

    #: How many matched records had their authenticity tag checked.
    records: int
    #: How many per-shard completeness proofs balanced.
    shards: int
    #: Whether the aggregate was also checked against an
    #: :class:`IntegrityState` (root and count).
    state_checked: bool


class ResultVerifier:
    """Checks search replies with the owner-derived tag keys."""

    def __init__(self, keys: TagKeys) -> None:
        self._keys = keys

    def verify(
        self,
        token: bytes,
        identifiers: Sequence[int],
        section: dict,
        state: IntegrityState | None = None,
    ) -> VerificationReport:
        """Run every check against one reply's integrity *section*.

        Accepts both reply shapes: a single server's section (3-element
        match entries, one proof) and the coordinator's merge (4-element
        entries carrying a shard index, one proof per shard).

        Raises:
            IntegrityError: Naming the first check that failed.
        """
        matches, proofs = _parse_section(section)
        by_shard = _group_matches(matches, len(proofs), set(identifiers))

        for shard_matches in by_shard:
            for identifier, digest, tag in shard_matches:
                if not verify_record_tag(self._keys, identifier, digest, tag):
                    raise IntegrityError(
                        f"record {identifier}: authenticity tag does not "
                        "verify (forged tag or altered ciphertext)"
                    )

        token_digest = hashlib.sha256(token).hexdigest()
        for index, (proof, shard_matches) in enumerate(zip(proofs, by_shard)):
            if not hmac.compare_digest(proof["token_digest"], token_digest):
                raise IntegrityError(
                    f"shard {index}: proof answers a different token than "
                    "the one sent"
                )
            folded = xor_fold(
                (
                    proof["complement"],
                    *(
                        membership_tag(self._keys, identifier)
                        for identifier, _, _ in shard_matches
                    ),
                )
            )
            if not hmac.compare_digest(folded, proof["root"]):
                raise IntegrityError(
                    f"shard {index}: completeness proof does not balance "
                    "(a matching record was dropped or a match was forged)"
                )

        if state is not None:
            merged_root = xor_fold(proof["root"] for proof in proofs)
            merged_count = sum(proof["count"] for proof in proofs)
            if not hmac.compare_digest(merged_root, state.root):
                raise IntegrityError(
                    "aggregate accumulator root disagrees with the "
                    "client's expected state (shard omitted from merge "
                    "or stale proof replayed)"
                )
            if merged_count != state.count:
                raise IntegrityError(
                    f"servers attest to {merged_count} stored records, "
                    f"client expects {state.count}"
                )

        return VerificationReport(
            records=len(matches),
            shards=len(proofs),
            state_checked=state is not None,
        )


# ----------------------------------------------------------------------
# Section parsing — defensive even though the protocol layer validates,
# because tampering with the section *is* the attack surface here.
# ----------------------------------------------------------------------
def _parse_section(
    section: dict,
) -> tuple[list[tuple[int, bytes, bytes, int]], list[dict]]:
    if not isinstance(section, dict):
        raise IntegrityError("integrity section is not an object")
    raw_matches = section.get("matches")
    raw_shards = section.get("shards")
    if not isinstance(raw_matches, list) or not isinstance(raw_shards, list):
        raise IntegrityError("integrity section is incomplete")
    if not raw_shards:
        raise IntegrityError("integrity section carries no shard proofs")

    proofs: list[dict] = []
    for raw in raw_shards:
        try:
            proof = {
                "root": bytes.fromhex(raw["root"]),
                "count": int(raw["count"]),
                "version": int(raw["version"]),
                "token_digest": str(raw["token_digest"]),
                "complement": bytes.fromhex(raw["complement"]),
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed shard proof: {exc}") from exc
        if (
            len(proof["root"]) != TAG_BYTES
            or len(proof["complement"]) != TAG_BYTES
            or proof["count"] < 0
        ):
            raise IntegrityError("implausible shard proof")
        proofs.append(proof)

    matches: list[tuple[int, bytes, bytes, int]] = []
    for entry in raw_matches:
        if not isinstance(entry, list) or len(entry) not in (3, 4):
            raise IntegrityError("malformed integrity match entry")
        try:
            identifier = int(entry[0])
            digest = bytes.fromhex(entry[1])
            tag = bytes.fromhex(entry[2])
            shard = int(entry[3]) if len(entry) == 4 else 0
        except (TypeError, ValueError) as exc:
            raise IntegrityError(
                f"malformed integrity match entry: {exc}"
            ) from exc
        if len(digest) != TAG_BYTES or len(tag) != TAG_BYTES:
            raise IntegrityError("malformed integrity match entry")
        matches.append((identifier, digest, tag, shard))
    return matches, proofs


def _group_matches(
    matches: list[tuple[int, bytes, bytes, int]],
    shard_count: int,
    identifiers: set[int],
) -> list[list[tuple[int, bytes, bytes]]]:
    by_shard: list[list[tuple[int, bytes, bytes]]] = [
        [] for _ in range(shard_count)
    ]
    seen: set[int] = set()
    for identifier, digest, tag, shard in matches:
        if shard < 0 or shard >= shard_count:
            raise IntegrityError(
                f"match entry names shard {shard} of {shard_count}"
            )
        if identifier in seen:
            raise IntegrityError(
                f"record {identifier} is attested by more than one entry"
            )
        seen.add(identifier)
        by_shard[shard].append((identifier, digest, tag))
    if seen != identifiers:
        missing = sorted(identifiers - seen)
        extra = sorted(seen - identifiers)
        raise IntegrityError(
            "integrity section disagrees with the identifier list "
            f"(unattested: {missing}, unreturned: {extra})"
        )
    return by_shard
