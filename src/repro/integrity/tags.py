"""Per-record authenticity tags and membership tags.

The data owner derives two HMAC keys from the CRSE secret key
(:func:`repro.crypto.keystore.derive_integrity_secret`) and attaches two
MACs to every uploaded record:

* the **record tag** binds the record identifier, the SHA-256 digest of
  its searchable ciphertext payload, and the public scheme header — a
  server cannot forge a match for a record the owner never uploaded, nor
  pass off a bit-flipped ciphertext as genuine;
* the **membership tag** binds only the identifier and the header.  It is
  deliberately payload-independent so the *client* can recompute it from
  an identifier alone — that is what lets a verifier fold returned
  matches into a shard's accumulator root without holding any payloads
  (:mod:`repro.integrity.verify`).

Both keys are domain-separated hashes of one 32-byte master secret, so
nothing about the SSW key material leaks into the tags, and the same
saved key blob reproduces the same tags after every restart.

Tag *verification* uses :func:`hmac.compare_digest` throughout — the tags
are not secret, but the comparison discipline is uniform across the
library's crypto surfaces.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass

__all__ = [
    "TAG_BYTES",
    "TagKeys",
    "header_fingerprint",
    "payload_digest",
    "record_tag",
    "membership_tag",
    "verify_record_tag",
]

#: Every tag, digest, and accumulator root in this subsystem is a full
#: SHA-256 output.
TAG_BYTES = 32

_RECORD_KEY_DOMAIN = b"repro-tag-rec|"
_MEMBERSHIP_KEY_DOMAIN = b"repro-tag-mem|"
_RECORD_TAG_PREFIX = b"rec"
_MEMBERSHIP_TAG_PREFIX = b"mem"


def header_fingerprint(scheme) -> bytes:
    """SHA-256 over the canonical public scheme header of *scheme*.

    Binding tags to the header (backend, space, scheme kind) means a tag
    minted under one deployment cannot be replayed against another that
    happens to reuse identifiers.  The header is public, so the
    fingerprint is too.
    """
    # Imported lazily: the service layer imports the cloud layer, which
    # imports this module — a module-level import here would be a cycle.
    from repro.service.schemeio import scheme_header

    canonical = json.dumps(
        scheme_header(scheme), separators=(",", ":"), sort_keys=True
    ).encode()
    return hashlib.sha256(canonical).digest()


def payload_digest(payload: bytes) -> bytes:
    """SHA-256 of a record's searchable ciphertext payload.

    The record tag covers this digest rather than the raw payload so a
    verifier needs only 32 bytes per match, not the full ciphertext.
    """
    return hashlib.sha256(payload).digest()


@dataclass(frozen=True)
class TagKeys:
    """The owner-held key material of the result-integrity layer.

    Derived (never stored) from the CRSE secret key; the server and the
    coordinator never see these bytes — they handle only the opaque tags
    the keys produce.
    """

    record_key: bytes
    membership_key: bytes
    header_fp: bytes

    def __repr__(self) -> str:
        """Redacted: key bytes must never reach logs or tracebacks."""
        return "TagKeys(<redacted>)"

    @classmethod
    def from_secret(cls, secret: bytes, header_fp: bytes) -> "TagKeys":
        """Expand the 32-byte integrity master secret into both tag keys."""
        return cls(
            record_key=hashlib.sha256(_RECORD_KEY_DOMAIN + secret).digest(),
            membership_key=hashlib.sha256(
                _MEMBERSHIP_KEY_DOMAIN + secret
            ).digest(),
            header_fp=header_fp,
        )

    @classmethod
    def derive(cls, scheme, key) -> "TagKeys":
        """Derive tag keys directly from a CRSE scheme and its secret key.

        Raises:
            SerializationError: If *key* carries no SSW material.
        """
        from repro.crypto.keystore import derive_integrity_secret

        return cls.from_secret(
            derive_integrity_secret(scheme, key), header_fingerprint(scheme)
        )


def _u64(value: int) -> bytes:
    return value.to_bytes(8, "big")


def record_tag(keys: TagKeys, identifier: int, payload: bytes) -> bytes:
    """MAC authenticating one record: ``HMAC(K_rec, "rec"‖id‖H(payload)‖fp)``."""
    message = (
        _RECORD_TAG_PREFIX
        + _u64(identifier)
        + payload_digest(payload)
        + keys.header_fp
    )
    return hmac.new(keys.record_key, message, hashlib.sha256).digest()


def membership_tag(keys: TagKeys, identifier: int) -> bytes:
    """MAC attesting one identifier's membership: ``HMAC(K_mem, "mem"‖id‖fp)``.

    Payload-independent by design — see the module docstring.
    """
    message = _MEMBERSHIP_TAG_PREFIX + _u64(identifier) + keys.header_fp
    return hmac.new(keys.membership_key, message, hashlib.sha256).digest()


def verify_record_tag(
    keys: TagKeys, identifier: int, digest: bytes, tag: bytes
) -> bool:
    """Check a record tag against an identifier and payload digest.

    *digest* is the server-reported :func:`payload_digest`; the tag is
    valid only if the owner minted it for exactly this identifier and
    exactly this ciphertext under exactly this scheme header.
    """
    message = _RECORD_TAG_PREFIX + _u64(identifier) + digest + keys.header_fp
    expected = hmac.new(keys.record_key, message, hashlib.sha256).digest()
    return hmac.compare_digest(expected, tag)
