"""The server-side (keyless) integrity registry of one shard.

A :class:`ShardIntegrity` holds, per stored identifier, the three opaque
byte strings the data owner shipped with the record — the payload digest
computed at ingest, the record tag, and the membership tag — plus the
:class:`~repro.integrity.accumulator.SetAccumulator` folding the
membership tags together.  Holding *no key material* is the point: the
registry can only replay tags the owner actually minted, so everything
it emits is checkable client-side and nothing it could fabricate would
verify.

It produces the two halves of a verifiable search reply:

* :meth:`matches_section` — per-match ``[identifier, digest, tag]``
  triples the client checks against its record-tag key;
* :meth:`proof_for` — the constant-size completeness proof: the shard's
  accumulator root/count/version, a digest of the token it evaluated,
  and the *complement* (XOR of the membership tags of every stored
  record **not** in the match set).  The client refolds the matched
  identifiers' membership tags into the complement and demands the
  shard root back; a dropped match leaves the fold unbalanced.  The
  proof's size is independent of both the dataset and the match count.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.errors import IntegrityError
from repro.integrity.accumulator import SetAccumulator, xor_fold
from repro.integrity.tags import TAG_BYTES, payload_digest

__all__ = ["ShardIntegrity"]


class ShardIntegrity:
    """Per-shard registry of record tags and the membership accumulator."""

    def __init__(self) -> None:
        # identifier → (payload digest, record tag, membership tag)
        self._records: dict[int, tuple[bytes, bytes, bytes]] = {}
        self._acc = SetAccumulator()

    # ------------------------------------------------------------------
    # Mutation — mirrors the shard's upload / delete / replay paths.
    # ------------------------------------------------------------------
    def add(self, identifier: int, payload: bytes, tag: bytes, mtag: bytes) -> None:
        """Register one stored record's tags; folds into the accumulator.

        The payload digest is computed *here*, from the bytes actually
        stored — so a ciphertext corrupted before ingest fails the
        client's tag check, and one corrupted after ingest is caught by
        the offline audit (``repro integrity audit``) comparing stored
        payloads against these digests.

        Records uploaded without tags (a pre-integrity client) are
        registered with empty tags and simply make the shard
        unverifiable — :attr:`complete` turns false.

        Raises:
            IntegrityError: On a duplicate identifier or a tag of the
                wrong length.
        """
        if identifier in self._records:
            raise IntegrityError(
                f"record {identifier} is already registered for integrity"
            )
        if (tag or mtag) and (
            len(tag) != TAG_BYTES or len(mtag) != TAG_BYTES
        ):
            raise IntegrityError(
                f"record {identifier} carries malformed integrity tags"
            )
        self._records[identifier] = (payload_digest(payload), tag, mtag)
        if mtag:
            self._acc.add(mtag)

    def remove(self, identifier: int) -> bool:
        """Unregister a deleted record; folds its tag back out.

        Returns whether the identifier was registered (deletes of absent
        identifiers are a no-op, matching the store's semantics).
        """
        entry = self._records.pop(identifier, None)
        if entry is None:
            return False
        if entry[2]:
            self._acc.remove(entry[2])
        return True

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """How many records are registered."""
        return len(self._records)

    @property
    def root(self) -> bytes:
        """The accumulator root over all registered membership tags."""
        return self._acc.root

    @property
    def version(self) -> int:
        """Monotonic mutation counter of the accumulator."""
        return self._acc.version

    @property
    def complete(self) -> bool:
        """True when every registered record carries both tags."""
        return all(tag and mtag for _, tag, mtag in self._records.values())

    def entries(self) -> Iterable[tuple[int, bytes, bytes, bytes]]:
        """Yield ``(identifier, digest, tag, mtag)`` for every record."""
        for identifier, (digest, tag, mtag) in sorted(self._records.items()):
            yield identifier, digest, tag, mtag

    def tags_for(self, identifier: int) -> tuple[bytes, bytes]:
        """The stored ``(tag, mtag)`` pair for one identifier.

        Raises:
            IntegrityError: If the identifier is not registered.
        """
        entry = self._records.get(identifier)
        if entry is None:
            raise IntegrityError(
                f"record {identifier} has no registered integrity tags"
            )
        return entry[1], entry[2]

    def checkpoint(self) -> dict:
        """Accumulator state in manifest-checkpoint form."""
        return self._acc.to_dict()

    # ------------------------------------------------------------------
    # Reply construction
    # ------------------------------------------------------------------
    def matches_section(self, identifiers: Sequence[int]) -> list[list]:
        """Per-match ``[identifier, digest_hex, tag_hex]`` entries.

        Raises:
            IntegrityError: If a matched identifier is unregistered or
                stored without a record tag — the shard cannot attest to
                what it never received.
        """
        out: list[list] = []
        for identifier in identifiers:
            entry = self._records.get(identifier)
            if entry is None or not entry[1]:
                raise IntegrityError(
                    f"matched record {identifier} has no authenticity tag"
                )
            out.append([identifier, entry[0].hex(), entry[1].hex()])
        return out

    def proof_for(self, identifiers: Sequence[int], token: bytes) -> dict:
        """The constant-size completeness proof for one search.

        Raises:
            IntegrityError: If a matched identifier is unregistered, or
                any stored record lacks a membership tag (the complement
                would be meaningless).
        """
        if not self.complete:
            raise IntegrityError(
                "shard stores records without integrity tags; "
                "completeness cannot be proven"
            )
        matched = set(identifiers)
        unknown = matched.difference(self._records)
        if unknown:
            raise IntegrityError(
                f"match set names unregistered records {sorted(unknown)}"
            )
        complement = xor_fold(
            mtag
            for identifier, (_, _, mtag) in self._records.items()
            if identifier not in matched
        )
        return {
            "root": self._acc.root.hex(),
            "count": self._acc.count,
            "version": self._acc.version,
            "token_digest": hashlib.sha256(token).hexdigest(),
            "complement": complement.hex(),
        }
