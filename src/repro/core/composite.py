"""Composite radial queries: annuli and unions of circles.

The concentric-circle covering (Sec. VI-A) is more general than a single
disk: *any* radial condition over integer distances is a set of admissible
squared radii, and CRSE-II will happily carry one sub-token per admissible
radius.  Two useful shapes fall out immediately, both answered by the
unmodified keys and ciphertexts:

* **annulus** ("between 100 m and 200 m away"): admissible radii are the
  sums of squares in ``(r_inner², r_outer²]`` — simply drop the inner
  disk's circles from the covering;
* **union of circles** (multi-center proximity, e.g. "near any of my three
  stores"): concatenate the coverings, deduplicating identical
  (center, r²) pairs.

Leakage mirrors CRSE-II: the sub-token count now reveals the *composite*
shape's covering size; the same dummy padding applies.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.concircles import gen_con_circle
from repro.core.crse2 import CRSE2Key, CRSE2Scheme, CRSE2Token, dummy_circle
from repro.core.geometry import Circle
from repro.core.permute import permute, random_beta
from repro.crypto.ssw import ssw_gen_token
from repro.errors import ParameterError, SchemeError

__all__ = [
    "annulus_radii_squared",
    "gen_annulus_token",
    "gen_union_token",
    "point_in_annulus",
]


def annulus_radii_squared(
    inner_r_squared: int, outer_r_squared: int, w: int = 2
) -> list[int]:
    """Covering radii for the annulus ``inner < d² <= outer``.

    Raises:
        ParameterError: For an inverted or negative annulus.
    """
    if inner_r_squared < 0 or outer_r_squared < inner_r_squared:
        raise ParameterError(
            f"invalid annulus ({inner_r_squared}, {outer_r_squared}]"
        )
    outer = gen_con_circle(outer_r_squared, w)
    return [r_sq for r_sq in outer if r_sq > inner_r_squared]


def point_in_annulus(
    point: Sequence[int],
    center: Sequence[int],
    inner_r_squared: int,
    outer_r_squared: int,
) -> bool:
    """Plaintext predicate: ``inner < d(point, center)² <= outer``."""
    d_sq = sum((a - b) * (a - b) for a, b in zip(point, center))
    return inner_r_squared < d_sq <= outer_r_squared


def _build_token(
    scheme: CRSE2Scheme,
    key: CRSE2Key,
    circles: list[Circle],
    rng: random.Random,
    hide_count_to: int | None,
) -> CRSE2Token:
    if not circles:
        raise SchemeError("composite query covers no concentric circle")
    if hide_count_to is not None:
        if hide_count_to < len(circles):
            raise SchemeError(
                f"cannot hide {len(circles)} sub-tokens inside {hide_count_to}"
            )
        circles = circles + [
            dummy_circle(scheme.space, circles[0].center)
            for _ in range(hide_count_to - len(circles))
        ]
    sub_tokens = [
        ssw_gen_token(key.ssw, key.split.f_v(c.center, [c.r_squared]), rng)
        for c in circles
    ]
    beta = random_beta(len(sub_tokens), rng)
    return CRSE2Token(sub_tokens=tuple(permute(sub_tokens, beta)))


def gen_annulus_token(
    scheme: CRSE2Scheme,
    key: CRSE2Key,
    center: Sequence[int],
    inner_r_squared: int,
    outer_r_squared: int,
    rng: random.Random,
    hide_count_to: int | None = None,
) -> CRSE2Token:
    """Token matching points with ``inner < d² <= outer`` from *center*.

    Note the strict inner bound: points exactly at distance²
    ``inner_r_squared`` are *excluded* (they belong to the inner disk).

    Raises:
        SchemeError / ParameterError: On domain violations or an annulus
            containing no admissible radius.
    """
    scheme.space.validate_circle(Circle(tuple(center), outer_r_squared))
    radii = annulus_radii_squared(
        inner_r_squared, outer_r_squared, scheme.space.w
    )
    circles = [Circle(tuple(center), r_sq) for r_sq in radii]
    return _build_token(scheme, key, circles, rng, hide_count_to)


def gen_union_token(
    scheme: CRSE2Scheme,
    key: CRSE2Key,
    circles: Sequence[Circle],
    rng: random.Random,
    hide_count_to: int | None = None,
) -> CRSE2Token:
    """Token matching points inside *any* of the query circles.

    Coverings are concatenated and deduplicated on (center, r²); a point in
    several circles simply matches its first surviving sub-token.

    Raises:
        SchemeError / ParameterError: On an empty union or domain
            violations.
    """
    if not circles:
        raise SchemeError("union query needs at least one circle")
    seen: set[tuple[tuple[int, ...], int]] = set()
    covering: list[Circle] = []
    for circle in circles:
        scheme.space.validate_circle(circle)
        for r_sq in gen_con_circle(circle.r_squared, scheme.space.w):
            fingerprint = (circle.center, r_sq)
            if fingerprint not in seen:
                seen.add(fingerprint)
                covering.append(Circle(circle.center, r_sq))
    return _build_token(scheme, key, covering, rng, hide_count_to)
