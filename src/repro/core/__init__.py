"""The paper's contribution: CPE, CRSE-I, and CRSE-II."""

from repro.core.base import (
    CRSEScheme,
    EncryptedRecord,
    encrypt_dataset,
    linear_search,
)
from repro.core.composite import (
    annulus_radii_squared,
    gen_annulus_token,
    gen_union_token,
    point_in_annulus,
)
from repro.core.concircles import (
    gen_con_circle,
    gen_con_circles_for,
    num_concentric_circles,
)
from repro.core.cpe import (
    CirclePredicateEncryption,
    CPECiphertext,
    CPEKey,
    CPEToken,
)
from repro.core.crse1 import CRSE1Ciphertext, CRSE1Key, CRSE1Scheme, CRSE1Token
from repro.core.crse2 import (
    CRSE2Ciphertext,
    CRSE2Key,
    CRSE2Scheme,
    CRSE2Token,
    dummy_circle,
)
from repro.core.geometry import (
    Circle,
    DataSpace,
    distance_squared,
    point_in_circle,
    point_on_boundary,
)
from repro.core.interval import (
    IntervalScheme,
    RectangleScheme,
    interval_inner_product_bound,
)
from repro.core.permute import permutation_from_beta, permute, random_beta
from repro.core.provision import group_for_crse1, group_for_crse2, provision_group
from repro.core.region import Rectangle, gen_region_token
from repro.core.simplex import Simplex, SimplexRangeScheme
from repro.core.split import (
    SplitForm,
    naive_alpha,
    optimized_alpha,
    split_boundary,
    split_product,
)

__all__ = [
    "CPECiphertext",
    "CPEKey",
    "CPEToken",
    "CRSE1Ciphertext",
    "CRSE1Key",
    "CRSE1Scheme",
    "CRSE1Token",
    "CRSE2Ciphertext",
    "CRSE2Key",
    "CRSE2Scheme",
    "CRSE2Token",
    "CRSEScheme",
    "Circle",
    "CirclePredicateEncryption",
    "DataSpace",
    "EncryptedRecord",
    "IntervalScheme",
    "Rectangle",
    "RectangleScheme",
    "Simplex",
    "SimplexRangeScheme",
    "SplitForm",
    "distance_squared",
    "annulus_radii_squared",
    "dummy_circle",
    "encrypt_dataset",
    "gen_annulus_token",
    "gen_con_circle",
    "gen_con_circles_for",
    "gen_region_token",
    "gen_union_token",
    "interval_inner_product_bound",
    "group_for_crse1",
    "group_for_crse2",
    "linear_search",
    "naive_alpha",
    "num_concentric_circles",
    "optimized_alpha",
    "permutation_from_beta",
    "permute",
    "point_in_annulus",
    "point_in_circle",
    "point_on_boundary",
    "provision_group",
    "random_beta",
    "split_boundary",
    "split_product",
]
