"""Provisioning bilinear groups sized for a scheme and data space.

The SSW payload prime must exceed the largest honest inner product a scheme
can produce (otherwise a multiple of the prime masquerades as a match).
These helpers compute the scheme-specific bound and build an appropriately
sized backend:

* ``backend="fast"`` — :class:`repro.crypto.groups.FastCompositeGroup`; no
  curve search needed, so the four subgroup primes are sampled directly.
* ``backend="pairing"`` — the real supersingular curve via Type-A1 parameter
  generation.
"""

from __future__ import annotations

import random

from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import DataSpace
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import SupersingularPairingGroup
from repro.crypto.groups.params import params_for_bound
from repro.errors import ParameterError
from repro.math.primes import random_prime

__all__ = ["provision_group", "group_for_crse2", "group_for_crse1"]

_DEFAULT_NOISE_BITS = 24

# Floor on the payload-prime size.  Correctness has two failure modes: a
# non-zero inner product divisible by p2 (eliminated by p2 > bound) and the
# blinding collision αf1+βf2 ≡ 0 (mod p2), whose probability is ~1/p2 per
# (ciphertext, token) pair — the paper's negl(λ).  A 40-bit floor keeps the
# latter genuinely negligible even for tiny data spaces.
_MIN_PAYLOAD_BITS = 40


def provision_group(
    bound: int,
    backend: str = "fast",
    rng: random.Random | None = None,
    noise_bits: int = _DEFAULT_NOISE_BITS,
    min_payload_bits: int = _MIN_PAYLOAD_BITS,
) -> CompositeBilinearGroup:
    """Build a group whose payload prime strictly exceeds *bound*.

    Args:
        bound: Largest honest inner-product magnitude.
        backend: ``"fast"`` or ``"pairing"``.
        rng: Randomness source (seed it for reproducible parameters).
        noise_bits: Bit size of the three non-payload subgroup primes.
        min_payload_bits: Floor on the payload prime size, bounding the
            blinding-collision (false match) probability by ``~2^-bits``.

    Raises:
        ParameterError: For an unknown backend name.
    """
    rng = rng or random.SystemRandom()
    payload_bits = max(bound.bit_length() + 1, min_payload_bits, 3)
    if backend == "pairing":
        params = params_for_bound(
            (1 << (payload_bits - 1)) | 1, noise_bits=noise_bits, rng=rng
        )
        return SupersingularPairingGroup(params)
    if backend == "fast":
        primes: list[int] = []
        for bits in (noise_bits, payload_bits, noise_bits, noise_bits):
            while True:
                p = random_prime(bits, rng)
                if p not in primes:
                    primes.append(p)
                    break
        return FastCompositeGroup(tuple(primes))
    raise ParameterError(f"unknown backend {backend!r}; use 'fast' or 'pairing'")


def group_for_crse2(
    space: DataSpace,
    backend: str = "fast",
    rng: random.Random | None = None,
) -> CompositeBilinearGroup:
    """Group sized for CRSE-II (and CPE) over *space*, dummies included."""
    return provision_group(space.max_distance_squared() + 1, backend, rng)


def group_for_crse1(
    space: DataSpace,
    r_squared: int,
    backend: str = "fast",
    rng: random.Random | None = None,
    hide_radius_to: int | None = None,
) -> CompositeBilinearGroup:
    """Group sized for CRSE-I's product bound at the key's fixed radius."""
    from repro.core.concircles import num_concentric_circles

    m = num_concentric_circles(r_squared, space.w)
    if hide_radius_to is not None:
        if hide_radius_to < m:
            # m is derived from the key's secret radius; keep it out of
            # the message (K alone is fine — the owner chose it).
            raise ParameterError(
                f"radius needs more factors than hide_radius_to K={hide_radius_to} allows"
            )
        m = hide_radius_to
    bound = CRSE1Scheme.required_inner_product_bound(space, r_squared, m)
    return provision_group(bound, backend, rng)
