"""Simplex range search on encrypted data — the paper's future work, built.

The conclusion names "searchable encryption schemes for other common
geometric queries, such as simplex range search (i.e., retrieving points
that are inside a triangle)" as future work.  The covering idea that powers
CRSE extends naturally: a simplex over the integer grid contains finitely
many lattice points, and each lattice point ``c`` is exactly the boundary
of the degenerate circle ``{c, r = 0}``.  So a simplex query becomes one
CPE sub-token per interior lattice point — the same sub-token machinery,
the same permutation, and crucially the **same keys and ciphertexts** as
CRSE-II: one encrypted dataset answers circles and simplices alike.

Costs and leakage follow the CRSE-II pattern: token size and search time
are ``O(#lattice points)`` (the simplex's area takes the role R² plays for
circles), and the sub-token count leaks that point count unless padded with
the usual dummy circles.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core.crse2 import CRSE2Key, CRSE2Scheme, CRSE2Token
from repro.errors import ParameterError, SchemeError
from repro.math.linalg import solve_linear_system

__all__ = ["Simplex", "SimplexRangeScheme"]


@dataclass(frozen=True)
class Simplex:
    """A ``w``-simplex with integer vertices (a triangle when ``w = 2``)."""

    vertices: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.vertices:
            raise ParameterError("simplex needs vertices")
        w = len(self.vertices[0])
        if len(self.vertices) != w + 1:
            raise ParameterError(
                f"a {w}-simplex needs exactly {w + 1} vertices, "
                f"got {len(self.vertices)}"
            )
        if any(len(v) != w for v in self.vertices):
            raise ParameterError("vertices must share one dimension")
        object.__setattr__(
            self, "vertices", tuple(tuple(v) for v in self.vertices)
        )

    @property
    def w(self) -> int:
        """Dimension of the ambient space."""
        return len(self.vertices[0])

    # ------------------------------------------------------------------
    def barycentric(self, point: Sequence[int]) -> list[Fraction]:
        """Exact barycentric coordinates of *point* (they sum to 1).

        Raises:
            ParameterError: If the simplex is degenerate (zero volume).
        """
        if len(point) != self.w:
            raise ParameterError("point dimension does not match simplex")
        # Solve sum_i λ_i v_i = p with sum_i λ_i = 1.
        n = self.w + 1
        matrix = [
            [Fraction(self.vertices[j][row]) for j in range(n)]
            for row in range(self.w)
        ]
        matrix.append([Fraction(1)] * n)
        rhs = [Fraction(c) for c in point] + [Fraction(1)]
        return solve_linear_system(matrix, rhs)

    def contains(self, point: Sequence[int]) -> bool:
        """Plaintext predicate: inside or on the boundary of the simplex."""
        try:
            coords = self.barycentric(point)
        except ParameterError:
            raise
        return all(c >= 0 for c in coords)

    def bounding_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Component-wise min and max over the vertices."""
        mins = tuple(min(v[d] for v in self.vertices) for d in range(self.w))
        maxs = tuple(max(v[d] for v in self.vertices) for d in range(self.w))
        return mins, maxs

    def lattice_points(self) -> list[tuple[int, ...]]:
        """All integer points inside (or on) the simplex.

        Enumerates the bounding box with the exact barycentric test —
        fine for query-sized simplices (the analogue of a query radius).
        """
        mins, maxs = self.bounding_box()
        ranges = [range(lo, hi + 1) for lo, hi in zip(mins, maxs)]
        return [
            point
            for point in itertools.product(*ranges)
            if self.contains(point)
        ]


class SimplexRangeScheme(CRSE2Scheme):
    """Simplex range search over CRSE-II keys and ciphertexts.

    ``gen_key``/``encrypt``/``matches`` are inherited unchanged: simplex
    tokens evaluate against ordinary CRSE-II ciphertexts, so a deployment
    can serve both query shapes from one outsourced dataset.
    """

    def gen_simplex_token(
        self,
        key: CRSE2Key,
        simplex: Simplex,
        rng: random.Random,
        hide_count_to: int | None = None,
    ) -> CRSE2Token:
        """Build a (permuted) token matching exactly the simplex's points.

        Args:
            key: A CRSE-II secret key.
            simplex: The query simplex; vertices must lie in the data space.
            rng: Randomness for SSW and the permutation.
            hide_count_to: Pad with dummy sub-tokens up to this count
                (hides the lattice-point count, the simplex analogue of the
                radius pattern).

        Raises:
            SchemeError / ParameterError: On domain violations.
        """
        if simplex.w != self.space.w:
            raise ParameterError(
                f"simplex dimension {simplex.w} does not match space "
                f"dimension {self.space.w}"
            )
        for vertex in simplex.vertices:
            if not self.space.contains_point(vertex):
                raise ParameterError(f"vertex {vertex} is outside the space")
        points = simplex.lattice_points()
        if not points:
            raise SchemeError("simplex contains no lattice points")
        from repro.core.region import gen_region_token

        return gen_region_token(
            self, key, points, rng, hide_count_to=hide_count_to
        )
