"""CRSE-I: single-token circular range search (paper Sec. VI-B, Fig. 7).

CRSE-I folds all ``m`` concentric-circle polynomials into the product
``P = P_1 ⋯ P_m`` (zero iff the point is on *some* covering circle, Eq. 7),
splits ``P`` into one long inner product, and runs a single SSW instance.
The result is the stronger scheme — one indivisible token, full SCPA data
and query privacy — at exponential cost: the vector length is
``α = (w+2)^m`` naive, ``C(m+w+1, w+1)`` after the paper's "optimized α"
merge, and ``m`` itself grows like ``O(R²)``.  Table I/II report exactly
this blow-up for ``R ∈ {1, 2, 3}``.

Structural consequences faithfully reproduced here:

* the radius ``R`` is **fixed at** ``GenKey`` and is a public parameter
  (the split's general form depends on ``m``), so one key answers queries
  of one radius only;
* ciphertexts depend on the key's radius (through ``α``), unlike CRSE-II;
* radius hiding (Sec. VI-D) pads ``m`` up to a public ``K`` with dummy
  circles at key-generation time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.concircles import gen_con_circle
from repro.core.geometry import Circle, DataSpace
from repro.core.base import CRSEScheme
from repro.core.split import SplitForm, split_product
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.ssw import (
    SSWCiphertext,
    SSWSecretKey,
    SSWToken,
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_setup,
)
from repro.errors import ParameterError, SchemeError

__all__ = ["CRSE1Key", "CRSE1Ciphertext", "CRSE1Token", "CRSE1Scheme"]


@dataclass(frozen=True)
class CRSE1Key:
    """CRSE-I secret key with its public parameters.

    Attributes:
        ssw: SSW key at vector length ``α``.
        split: The product split (public: ``{w, T, R, α, f_u, f_v}``).
        space: The data space.
        r_squared: The fixed query radius (squared) — public by design,
            which is why CRSE-I leaks the radius pattern.
        radii_squared: Squared radii of the ``m`` covering circles (plus
            dummies when radius hiding is on).
    """

    ssw: SSWSecretKey
    split: SplitForm
    space: DataSpace
    r_squared: int
    radii_squared: tuple[int, ...]

    def __repr__(self) -> str:  # redacted: wraps the SSW master key
        return f"CRSE1Key(alpha={self.alpha}, m={self.m}, space={self.space!r})"

    @property
    def m(self) -> int:
        """Number of polynomial factors (including dummy padding)."""
        return len(self.radii_squared)

    @property
    def alpha(self) -> int:
        """SSW vector length."""
        return self.split.alpha


@dataclass(frozen=True)
class CRSE1Ciphertext:
    """Encryption of one point under the product split."""

    ssw: SSWCiphertext

    @property
    def alpha(self) -> int:
        """SSW vector length."""
        return self.ssw.n


@dataclass(frozen=True)
class CRSE1Token:
    """A single indivisible search token."""

    ssw: SSWToken

    @property
    def alpha(self) -> int:
        """SSW vector length."""
        return self.ssw.n


class CRSE1Scheme(CRSEScheme[CRSE1Key, CRSE1Ciphertext, CRSE1Token]):
    """The CRSE-I construction (radius fixed at key generation)."""

    def __init__(
        self,
        space: DataSpace,
        group: CompositeBilinearGroup,
        r_squared: int,
        optimize_split: bool = True,
        hide_radius_to: int | None = None,
    ):
        """Set up CRSE-I for queries of one fixed radius.

        Args:
            space: The data space ``Δ^w_T``.
            group: Bilinear-group backend; its payload prime must exceed
                the product bound (grows like ``bound^m`` — size it with
                :meth:`required_inner_product_bound`).
            r_squared: The fixed squared query radius ``R²``.
            optimize_split: Use the merged split (α = C(m+w+1, w+1)) rather
                than the naive (w+2)^m expansion.
            hide_radius_to: If set to ``K >= m``, pad the product with dummy
                factors so the public parameters reveal only ``K``
                (Sec. VI-D radius hiding for CRSE-I).

        Raises:
            ParameterError / SchemeError: On out-of-domain parameters or an
                undersized group.
        """
        super().__init__(space, group)
        if r_squared < 0:
            raise ParameterError("squared radius must be non-negative")
        self.r_squared = r_squared
        real_radii = gen_con_circle(r_squared, space.w)
        self._m_real = len(real_radii)
        if hide_radius_to is not None:
            if hide_radius_to < len(real_radii):
                raise SchemeError(
                    f"cannot hide m={len(real_radii)} factors inside "
                    f"K={hide_radius_to}"
                )
            dummy_r_sq = space.max_distance_squared() + 1
            real_radii = real_radii + [dummy_r_sq] * (
                hide_radius_to - len(real_radii)
            )
        self._radii_squared = tuple(real_radii)
        self._split = split_product(
            space.w, len(self._radii_squared), optimize=optimize_split
        )
        self.check_group_supports_space()

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of product factors (covering circles plus dummies)."""
        return len(self._radii_squared)

    @property
    def alpha(self) -> int:
        """SSW vector length."""
        return self._split.alpha

    def inner_product_bound(self) -> int:
        return self.required_inner_product_bound(
            self.space, self.r_squared, self.m
        )

    @staticmethod
    def required_inner_product_bound(
        space: DataSpace, r_squared: int, m: int | None = None
    ) -> int:
        """Payload-prime bound for CRSE-I: the single-factor bound to the m-th power.

        ``|P(D)| = ∏ |P_i(D)| <= max(w(T-1)², R²+pad)^m``.
        """
        if m is None:
            m = len(gen_con_circle(r_squared, space.w))
        single = space.boundary_value_bound(
            max(r_squared, space.max_distance_squared() + 1)
        )
        return single**m

    # ------------------------------------------------------------------
    def gen_key(self, rng: random.Random) -> CRSE1Key:
        """``GenKey``: run ``GenConCircle``, ``Split(P1⋯Pm)``, SSW setup."""
        return CRSE1Key(
            ssw=ssw_setup(self.group, self._split.alpha, rng),
            split=self._split,
            space=self.space,
            r_squared=self.r_squared,
            radii_squared=self._radii_squared,
        )

    def encrypt(
        self, key: CRSE1Key, point: Sequence[int], rng: random.Random
    ) -> CRSE1Ciphertext:
        """``Enc``: encrypt the (long) vector ``f_u(D)``."""
        self._check_key(key)
        point = self.space.validate_point(point)
        return CRSE1Ciphertext(
            ssw=ssw_encrypt(key.ssw, key.split.f_u(point), rng)
        )

    def gen_token(
        self, key: CRSE1Key, circle: Circle, rng: random.Random
    ) -> CRSE1Token:
        """``GenToken``: tokenize ``f_v(Q)`` for a circle of the key's radius.

        Raises:
            SchemeError: If the circle's radius differs from the radius
                fixed at key generation (CRSE-I's static-radius limitation,
                paper Sec. VI-B).
        """
        self._check_key(key)
        self.space.validate_circle(circle)
        if circle.r_squared != key.r_squared:
            # Both radii are secrets (the key's fixed radius and the
            # query's); say that they differ, not what they are.
            raise SchemeError(
                "CRSE-I keys fix the query radius at KeyGen; this circle's "
                "radius differs from the key's"
            )
        vector = key.split.f_v(circle.center, list(key.radii_squared))
        return CRSE1Token(ssw=ssw_gen_token(key.ssw, vector, rng))

    def matches(self, token: CRSE1Token, ciphertext: CRSE1Ciphertext) -> bool:
        """``Search`` core: one SSW query over the length-α vectors."""
        if token.alpha != self.alpha or ciphertext.alpha != self.alpha:
            raise SchemeError(
                "token/ciphertext vector length does not match this scheme "
                "(was it produced by a key with a different radius?)"
            )
        return ssw_query(token.ssw, ciphertext.ssw)

    def _check_key(self, key: CRSE1Key) -> None:
        if key.r_squared != self.r_squared or key.split.alpha != self.alpha:
            raise SchemeError(
                "key was generated for a different CRSE-I configuration"
            )
