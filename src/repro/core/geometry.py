"""Points, circles, and data spaces (paper Sec. III, "Notations").

The paper's data model: the data space ``Δ^w_T`` holds ``w``-dimensional
integer points with every coordinate in ``[0, T-1]``; a data record is a
point ``D ∈ Δ^w_T`` and a circular range query is a circle
``Q = {(xc, yc), R} ⊆ Δ^w_T``.  "Inside" includes the boundary (paper
footnote 2).

Circles store the **squared** radius: the paper notes (Sec. VI, "Floating
Numbers") that the radius itself may be irrational (e.g. ``√2``) as long as
``R²`` is an integer, because only ``R²`` enters the encryption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ParameterError

__all__ = [
    "Circle",
    "DataSpace",
    "distance_squared",
    "point_in_circle",
    "point_on_boundary",
]


@dataclass(frozen=True)
class Circle:
    """A circle (``w = 2``) or hypersphere: integer center plus squared radius.

    Attributes:
        center: Integer coordinates of the center.
        r_squared: The squared radius ``R²`` (non-negative integer).
    """

    center: tuple[int, ...]
    r_squared: int

    def __post_init__(self) -> None:
        if self.r_squared < 0:
            raise ParameterError("squared radius must be non-negative")
        if not self.center:
            raise ParameterError("circle center must have at least 1 dimension")
        if any(not isinstance(c, int) for c in self.center):
            raise ParameterError("circle centers must have integer coordinates")
        object.__setattr__(self, "center", tuple(self.center))

    @classmethod
    def from_radius(cls, center: Sequence[int], radius: int) -> "Circle":
        """Build a circle from an integer radius (``r_squared = radius²``)."""
        if radius < 0:
            raise ParameterError("radius must be non-negative")
        return cls(tuple(center), radius * radius)

    @property
    def w(self) -> int:
        """Dimension of the ambient space."""
        return len(self.center)

    @property
    def radius(self) -> float:
        """The (possibly irrational) radius ``√(r_squared)``."""
        return math.sqrt(self.r_squared)

    def integer_radius(self) -> int:
        """The radius as an integer.

        Raises:
            ParameterError: If ``r_squared`` is not a perfect square.
        """
        root = math.isqrt(self.r_squared)
        if root * root != self.r_squared:
            raise ParameterError(
                f"squared radius {self.r_squared} is not a perfect square"
            )
        return root


def distance_squared(a: Sequence[int], b: Sequence[int]) -> int:
    """Squared Euclidean distance between two integer points.

    Raises:
        ParameterError: On dimension mismatch.
    """
    if len(a) != len(b):
        raise ParameterError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def point_in_circle(point: Sequence[int], circle: Circle) -> bool:
    """The plaintext predicate ``D ∈ Q``: inside or on the boundary."""
    return distance_squared(point, circle.center) <= circle.r_squared


def point_on_boundary(point: Sequence[int], circle: Circle) -> bool:
    """The plaintext predicate ``D ∈* Q``: exactly on the boundary."""
    return distance_squared(point, circle.center) == circle.r_squared


@dataclass(frozen=True)
class DataSpace:
    """The data space ``Δ^w_T``: ``w`` dimensions of size ``T`` each.

    Valid coordinates are the integers ``0 … T-1`` (paper Sec. III).

    Attributes:
        w: Number of dimensions (``w >= 2`` for the CRSE schemes; the paper
            presents ``w = 2`` and extends to higher dimensions in Sec. VI).
        t: Size of each dimension.
    """

    w: int
    t: int

    def __post_init__(self) -> None:
        if self.w < 1:
            raise ParameterError("data space needs at least 1 dimension")
        if self.t < 1:
            raise ParameterError("dimension size T must be positive")

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if *point* is an element of ``Δ^w_T``."""
        return len(point) == self.w and all(
            isinstance(c, int) and 0 <= c < self.t for c in point
        )

    def validate_point(self, point: Sequence[int]) -> tuple[int, ...]:
        """Return *point* as a tuple, or raise.

        Raises:
            ParameterError: If the point lies outside the space.
        """
        if not self.contains_point(point):
            # Coordinates are plaintext record data — name the space, not
            # the point.
            raise ParameterError(
                f"{len(tuple(point))}-dimensional point is not in "
                f"Δ^{self.w}_{self.t}"
            )
        return tuple(point)

    def validate_circle(self, circle: Circle) -> Circle:
        """Check that a query circle is posed over this space.

        The paper requires ``Q ⊆ Δ^w_T``; operationally we require the
        center to lie in the space and the squared radius not to exceed the
        space diameter (larger radii match everything and only waste
        sub-tokens; dummy circles for radius hiding are created through
        :func:`repro.core.crse2.dummy_circle` instead).

        Raises:
            ParameterError: If the circle is malformed for this space.
        """
        if circle.w != self.w:
            raise ParameterError(
                f"circle dimension {circle.w} does not match space dimension {self.w}"
            )
        if not self.contains_point(circle.center):
            raise ParameterError(
                "query circle center is outside the data space"
            )
        if circle.r_squared > self.max_distance_squared():
            raise ParameterError(
                "squared radius exceeds the data-space diameter; "
                "use a dummy circle for radius hiding instead"
            )
        return circle

    def max_distance_squared(self) -> int:
        """Largest squared distance between two points of the space."""
        return self.w * (self.t - 1) * (self.t - 1)

    def boundary_value_bound(self, max_r_squared: int | None = None) -> int:
        """Bound on ``|P(D)|`` for one boundary polynomial.

        ``P(D) = Σ_k (x_k - c_k)² - r²`` ranges over
        ``[-max_r_squared, w(T-1)²]`` for points and centers in the space.
        This (and its CRSE-I power) is what sizes the SSW payload prime.
        """
        if max_r_squared is None:
            max_r_squared = self.max_distance_squared()
        return max(self.max_distance_squared(), max_r_squared)

    def iter_points(self) -> Iterator[tuple[int, ...]]:
        """Iterate every point of the space (use only for small spaces)."""

        def rec(prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
            if len(prefix) == self.w:
                yield prefix
                return
            for value in range(self.t):
                yield from rec(prefix + (value,))

        return rec(())

    def lattice_points_in_circle(self, circle: Circle) -> list[tuple[int, ...]]:
        """All space points inside (or on) *circle* — the ground-truth result set."""
        self.validate_circle(circle)
        lo = [max(0, c - math.isqrt(circle.r_squared)) for c in circle.center]
        hi = [
            min(self.t - 1, c + math.isqrt(circle.r_squared))
            for c in circle.center
        ]

        def rec(dim: int, prefix: tuple[int, ...], budget: int) -> Iterator[tuple[int, ...]]:
            if dim == self.w:
                yield prefix
                return
            c = circle.center[dim]
            for value in range(lo[dim], hi[dim] + 1):
                rest = budget - (value - c) * (value - c)
                if rest >= 0:
                    yield from rec(dim + 1, prefix + (value,), rest)

        return list(rec(0, (), circle.r_squared))
