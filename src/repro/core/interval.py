"""Interval and rectangle search over SSW — the Related-Work primitive,
rebuilt with the paper's own technique.

The paper's Related Work surveys multi-dimensional range searchable
encryption ([13]-[17]) as the established alternative: rectangular range
search.  The CRSE splitting trick covers that primitive too, with a
different polynomial: membership of ``x`` in the integer interval
``[a, b]`` is the vanishing of the *root product*

    P(x) = ∏_{v=a}^{b} (x - v),

and ``P`` splits into ``⟨(x^d, …, x, 1), (c_d, …, c_1, c_0)⟩`` — the
point side is the **moment vector** of ``x`` and the query side carries the
coefficients of ``P``.  One SSW instance per dimension then answers
axis-aligned boxes by conjunction.

The construction mirrors CRSE-I's structural costs and limitations,
deliberately:

* the maximum interval **width** is fixed at key generation (the vector
  length is public), padded with out-of-space roots for narrower queries —
  exactly the dummy-circle trick;
* the payload prime must dominate ``max |P(x)| ≈ (T + W)^W``, so the
  feasible width is small — the same exponential wall as CRSE-I's radius;
* the conjunction leaks **per-dimension Booleans** to the server (strictly
  more than CRSE's single Boolean), which is the security price of the
  box shape and is demonstrated in the tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import DataSpace
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.ssw import (
    SSWCiphertext,
    SSWSecretKey,
    SSWToken,
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_setup,
)
from repro.errors import ParameterError, SchemeError
from repro.math.polynomial import Polynomial

__all__ = [
    "IntervalKey",
    "IntervalCiphertext",
    "IntervalToken",
    "IntervalScheme",
    "RectangleScheme",
    "interval_inner_product_bound",
]


def interval_inner_product_bound(t: int, max_width: int) -> int:
    """Payload-prime bound: ``max |∏ (x - root)|`` over the data space.

    Roots live in ``[0, T + W]`` (dummy padding sits just above the
    space), so each factor has magnitude at most ``T + W``.
    """
    return (t + max_width) ** max_width


@dataclass(frozen=True)
class IntervalKey:
    """Secret key for one dimension's interval predicate."""

    ssw: SSWSecretKey
    t: int
    max_width: int

    @property
    def alpha(self) -> int:
        """Vector length: ``max_width + 1`` coefficients."""
        return self.max_width + 1


@dataclass(frozen=True)
class IntervalCiphertext:
    """Encryption of a coordinate's moment vector ``(x^d, …, x, 1)``."""

    ssw: SSWCiphertext


@dataclass(frozen=True)
class IntervalToken:
    """Token carrying the root-product coefficients of one interval."""

    ssw: SSWToken


class IntervalScheme:
    """1-D range predicate encryption via root products."""

    def __init__(
        self,
        t: int,
        max_width: int,
        group: CompositeBilinearGroup,
    ):
        """Fix the domain ``[0, T)`` and the maximum interval width.

        Args:
            t: Domain size.
            max_width: Largest number of integers an interval may contain;
                public (the analogue of CRSE-I's fixed radius).
            group: Backend; payload prime must exceed
                :func:`interval_inner_product_bound`.

        Raises:
            ParameterError / SchemeError: On bad domain or undersized group.
        """
        if t < 1:
            raise ParameterError("domain size must be positive")
        if max_width < 1:
            raise ParameterError("maximum width must be at least 1")
        self.t = t
        self.max_width = max_width
        self.group = group
        if not group.exponent_bound_ok(interval_inner_product_bound(t, max_width)):
            raise SchemeError(
                "payload prime too small for this interval configuration; "
                "provision with interval_inner_product_bound"
            )

    # ------------------------------------------------------------------
    def gen_key(self, rng: random.Random) -> IntervalKey:
        """SSW setup at vector length ``max_width + 1``."""
        return IntervalKey(
            ssw=ssw_setup(self.group, self.max_width + 1, rng),
            t=self.t,
            max_width=self.max_width,
        )

    def encrypt(
        self, key: IntervalKey, value: int, rng: random.Random
    ) -> IntervalCiphertext:
        """Encrypt the moment vector of *value*.

        Raises:
            ParameterError: For out-of-domain values.
        """
        if not 0 <= value < self.t:
            raise ParameterError(f"value {value} outside [0, {self.t})")
        degree = self.max_width
        moments = [value**e for e in range(degree, -1, -1)]
        return IntervalCiphertext(ssw=ssw_encrypt(key.ssw, moments, rng))

    def gen_token(
        self, key: IntervalKey, lo: int, hi: int, rng: random.Random
    ) -> IntervalToken:
        """Tokenize the interval ``[lo, hi]`` (inclusive).

        Narrower intervals are padded with roots above the domain, so every
        token exposes the same width ``max_width`` — width hiding for free.

        Raises:
            ParameterError / SchemeError: On bad bounds or excessive width.
        """
        if not 0 <= lo <= hi < self.t:
            raise ParameterError(f"invalid interval [{lo}, {hi}] for [0, {self.t})")
        width = hi - lo + 1
        if width > self.max_width:
            raise SchemeError(
                f"interval width {width} exceeds the key's maximum "
                f"{self.max_width}"
            )
        roots = list(range(lo, hi + 1))
        # Dummy roots just above the domain: no domain value can hit them.
        roots.extend(self.t + 1 + j for j in range(self.max_width - width))
        poly = Polynomial.one(1)
        for root in roots:
            poly = poly * (Polynomial.variable(1, 0) - root)
        degree = self.max_width
        coeffs = [poly.coefficient((e,)) for e in range(degree, -1, -1)]
        return IntervalToken(ssw=ssw_gen_token(key.ssw, coeffs, rng))

    @staticmethod
    def matches(token: IntervalToken, ciphertext: IntervalCiphertext) -> bool:
        """True iff the encrypted value lies in the token's interval."""
        return ssw_query(token.ssw, ciphertext.ssw)


class RectangleScheme:
    """Axis-aligned box search: one interval instance per dimension.

    The server evaluates each dimension independently and reports the
    conjunction — learning the per-dimension Booleans along the way
    (structured leakage CRSE does not have; see the tests).
    """

    def __init__(
        self,
        space: DataSpace,
        max_width: int,
        group: CompositeBilinearGroup,
    ):
        self.space = space
        self._dims = [
            IntervalScheme(space.t, max_width, group) for _ in range(space.w)
        ]

    @property
    def max_width(self) -> int:
        """Per-dimension width cap."""
        return self._dims[0].max_width

    def gen_key(self, rng: random.Random) -> list[IntervalKey]:
        """One independent interval key per dimension."""
        return [dim.gen_key(rng) for dim in self._dims]

    def encrypt(
        self, keys: Sequence[IntervalKey], point: Sequence[int], rng: random.Random
    ) -> list[IntervalCiphertext]:
        """Encrypt each coordinate under its dimension's key."""
        point = self.space.validate_point(point)
        return [
            dim.encrypt(key, value, rng)
            for dim, key, value in zip(self._dims, keys, point)
        ]

    def gen_token(
        self,
        keys: Sequence[IntervalKey],
        lows: Sequence[int],
        highs: Sequence[int],
        rng: random.Random,
    ) -> list[IntervalToken]:
        """Tokenize the box ``∏ [lows_d, highs_d]``."""
        if len(lows) != self.space.w or len(highs) != self.space.w:
            raise ParameterError("box bounds must match the space dimension")
        return [
            dim.gen_token(key, lo, hi, rng)
            for dim, key, lo, hi in zip(self._dims, keys, lows, highs)
        ]

    @staticmethod
    def matches_with_leakage(
        tokens: Sequence[IntervalToken],
        ciphertexts: Sequence[IntervalCiphertext],
    ) -> tuple[bool, list[bool]]:
        """The server's view: the conjunction *and* each dimension's Boolean."""
        per_dimension = [
            IntervalScheme.matches(token, ciphertext)
            for token, ciphertext in zip(tokens, ciphertexts)
        ]
        return all(per_dimension), per_dimension

    @classmethod
    def matches(
        cls,
        tokens: Sequence[IntervalToken],
        ciphertexts: Sequence[IntervalCiphertext],
    ) -> bool:
        """The box predicate (what the client receives)."""
        return cls.matches_with_leakage(tokens, ciphertexts)[0]
