"""``GenConCircle``: concentric circles covering a query circle (Sec. VI-A).

The paper's central covering idea: every integer point inside a query circle
of squared radius ``R²`` lies at an integer squared distance ``d ∈ [0, R²]``
from the center, and ``d`` must be a sum of ``w`` integer squares.  So the
concentric circles with exactly those squared radii — the center itself is
the degenerate circle with radius 0 — cover **all** candidate points, and a
point is inside the query iff it is on the boundary of one of them.

``m``, the number of concentric circles, is what drives every cost in the
paper's evaluation: for ``w = 2`` it is the count of sums-of-two-squares in
``[0, R²]`` (Fig. 9, upper-bounded by ``R² + 1``); for ``w = 3`` Legendre's
theorem applies; for ``w >= 4`` Lagrange's theorem makes it exactly
``R² + 1``.
"""

from __future__ import annotations

from repro.core.geometry import Circle
from repro.errors import ParameterError
from repro.math.sumsquares import sums_of_squares_up_to

__all__ = [
    "gen_con_circle",
    "gen_con_circles_for",
    "num_concentric_circles",
]


def gen_con_circle(r_squared: int, w: int = 2) -> list[int]:
    """Return the squared radii of the covering concentric circles.

    This is the paper's ``GenConCircle`` — deterministic and independent of
    the circle's center (Sec. VI-A).

    Args:
        r_squared: The query circle's squared radius ``R²``.
        w: Spatial dimension.

    Returns:
        The sorted squared radii ``r_1² = 0 < r_2² < … <= R²``; the list
        length is ``m``.

    Raises:
        ParameterError: If arguments are out of domain.
    """
    if r_squared < 0:
        raise ParameterError("squared radius must be non-negative")
    if w < 1:
        raise ParameterError("dimension must be at least 1")
    return sums_of_squares_up_to(r_squared, w)


def num_concentric_circles(r_squared: int, w: int = 2) -> int:
    """Return ``m`` — the number of concentric circles for a query."""
    return len(gen_con_circle(r_squared, w))


def gen_con_circles_for(circle: Circle) -> list[Circle]:
    """Materialize the concentric circles ``Q_i = {center, r_i}`` of a query."""
    return [
        Circle(circle.center, r_sq)
        for r_sq in gen_con_circle(circle.r_squared, circle.w)
    ]
