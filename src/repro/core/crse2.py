"""CRSE-II: scalable circular range search via per-circle sub-tokens
(paper Sec. VI-C, Fig. 8).

For a query circle with ``m`` covering concentric circles, ``GenToken``
builds one CPE sub-token per concentric circle and ships them in a freshly
permuted order; ``Search`` evaluates sub-tokens until one matches (the point
is on that concentric circle's boundary, hence inside the query) or all
fail.  Costs: ``O(α)`` per sub-token with ``α = w + 2``, so ``O(α·m)`` per
record worst case and ``m/2`` sub-token evaluations on average for matching
records — the quantities behind Figs. 10-16.

Security (paper Sec. VII / Appendix): weaker than CRSE-I — a shared
sub-token match reveals that two records lie on the *same* concentric
circle (the Fig. 18/19 distinguishing attack), and the sub-token count
reveals the radius.  The radius leak can be blunted by padding with dummy
sub-tokens whose circles lie outside the data space (Sec. VI-D, "Radius
Privacy"), implemented here via ``hide_radius_to``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.concircles import gen_con_circle
from repro.core.geometry import Circle, DataSpace
from repro.core.base import CRSEScheme
from repro.core.permute import permute, random_beta
from repro.core.split import SplitForm, split_boundary
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.ssw import (
    SSWCiphertext,
    SSWSecretKey,
    SSWToken,
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_setup,
)
from repro.errors import SchemeError

__all__ = ["CRSE2Key", "CRSE2Ciphertext", "CRSE2Token", "CRSE2Scheme", "dummy_circle"]


@dataclass(frozen=True, repr=False)
class CRSE2Key:
    """CRSE-II secret key (identical in shape to a CPE key)."""

    ssw: SSWSecretKey
    split: SplitForm
    space: DataSpace

    def __repr__(self) -> str:  # redacted: wraps the SSW master key
        return f"CRSE2Key(alpha={self.ssw.n}, space={self.space!r})"


@dataclass(frozen=True)
class CRSE2Ciphertext:
    """Encryption of one point: a single SSW ciphertext at ``α = w + 2``."""

    ssw: SSWCiphertext

    @property
    def alpha(self) -> int:
        """SSW vector length."""
        return self.ssw.n


@dataclass(frozen=True)
class CRSE2Token:
    """A permuted tuple of sub-tokens ``TK* = (TK*_1, …, TK*_m)``.

    ``num_sub_tokens`` includes any dummy padding, so it equals the real
    ``m`` only when radius hiding is off — which is exactly the radius
    leakage story of Sec. VI-D.
    """

    sub_tokens: tuple[SSWToken, ...]

    @property
    def num_sub_tokens(self) -> int:
        """Total sub-tokens (real + dummy) — what the server observes."""
        return len(self.sub_tokens)


def dummy_circle(space: DataSpace, center: Sequence[int]) -> Circle:
    """A concentric circle no space point can touch (for radius hiding).

    Its squared radius exceeds the space diameter, so no record is ever on
    its boundary (paper's example: data in [0,100]² padded with ``R=200``).
    """
    return Circle(tuple(center), space.max_distance_squared() + 1)


class CRSE2Scheme(CRSEScheme[CRSE2Key, CRSE2Ciphertext, CRSE2Token]):
    """The CRSE-II construction."""

    def __init__(self, space: DataSpace, group: CompositeBilinearGroup):
        super().__init__(space, group)
        self._split = split_boundary(space.w)
        self.check_group_supports_space()

    @property
    def alpha(self) -> int:
        """Per-sub-token vector length ``α = w + 2``."""
        return self._split.alpha

    def inner_product_bound(self) -> int:
        # Dummy circles use r² = max_distance² + 1, the largest honest value.
        return self.space.max_distance_squared() + 1

    # ------------------------------------------------------------------
    def gen_key(self, rng: random.Random) -> CRSE2Key:
        """``GenKey``: same as CPE's (paper Fig. 8)."""
        return CRSE2Key(
            ssw=ssw_setup(self.group, self._split.alpha, rng),
            split=self._split,
            space=self.space,
        )

    def encrypt(
        self, key: CRSE2Key, point: Sequence[int], rng: random.Random
    ) -> CRSE2Ciphertext:
        """``Enc``: one SSW encryption of ``f_u(D)`` — independent of any radius."""
        point = self.space.validate_point(point)
        return CRSE2Ciphertext(
            ssw=ssw_encrypt(key.ssw, key.split.f_u(point), rng)
        )

    def gen_token(
        self,
        key: CRSE2Key,
        circle: Circle,
        rng: random.Random,
        hide_radius_to: int | None = None,
    ) -> CRSE2Token:
        """``GenToken``: one sub-token per concentric circle, permuted.

        Args:
            key: The secret key.
            circle: The query circle ``Q = {center, R}``.
            rng: Randomness for SSW and the fresh permutation β.
            hide_radius_to: If set to ``K``, pad with dummy sub-tokens so the
                server sees exactly ``K`` sub-tokens (Sec. VI-D radius
                hiding).  Must satisfy ``K >= m``.

        Raises:
            SchemeError: If ``hide_radius_to`` is smaller than ``m``.
        """
        self.space.validate_circle(circle)
        radii_squared = gen_con_circle(circle.r_squared, self.space.w)
        circles = [Circle(circle.center, r_sq) for r_sq in radii_squared]
        if hide_radius_to is not None:
            if hide_radius_to < len(circles):
                raise SchemeError(
                    f"cannot hide m={len(circles)} sub-tokens inside "
                    f"K={hide_radius_to}"
                )
            circles.extend(
                dummy_circle(self.space, circle.center)
                for _ in range(hide_radius_to - len(circles))
            )
        sub_tokens = [
            ssw_gen_token(
                key.ssw,
                key.split.f_v(sub.center, [sub.r_squared]),
                rng,
            )
            for sub in circles
        ]
        beta = random_beta(len(sub_tokens), rng)
        return CRSE2Token(sub_tokens=tuple(permute(sub_tokens, beta)))

    def matches(self, token: CRSE2Token, ciphertext: CRSE2Ciphertext) -> bool:
        """``Search`` core: evaluate sub-tokens until one flags a match."""
        return any(
            ssw_query(sub, ciphertext.ssw) for sub in token.sub_tokens
        )

    def matches_with_stats(
        self, token: CRSE2Token, ciphertext: CRSE2Ciphertext
    ) -> tuple[bool, int]:
        """Like :meth:`matches`, also reporting sub-tokens evaluated.

        The early-exit count is the paper's "average case" driver: matching
        records stop after the hit, non-matching records pay all ``m``.
        """
        for evaluated, sub in enumerate(token.sub_tokens, start=1):
            if ssw_query(sub, ciphertext.ssw):
                return True, evaluated
        return False, len(token.sub_tokens)
