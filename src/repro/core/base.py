"""Common CRSE scheme interface (paper Def. 1) and dataset helpers.

A symmetric-key Circular Range Searchable Encryption scheme is the tuple
``Π = (GenKey, Enc, GenToken, Search)``.  Both constructions (CRSE-I and
CRSE-II) implement :class:`CRSEScheme`; everything above this layer — the
simulated cloud, the benchmarks, the examples — is written against the
interface, so the schemes are drop-in replacements for each other.

``Search`` in the paper acts on a single ciphertext and returns the record's
identifier or ``⊥``; the dataset-level extension is the linear scan the
paper describes at the end of Sec. III ("separately encrypting each D_i …
and linearly searching each ciphertext").
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Generic, Iterable, Sequence, TypeVar

from repro.core.geometry import Circle, DataSpace
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.errors import SchemeError

__all__ = [
    "CRSEScheme",
    "EncryptedRecord",
    "encrypt_dataset",
    "linear_search",
]

KeyT = TypeVar("KeyT")
CiphertextT = TypeVar("CiphertextT")
TokenT = TypeVar("TokenT")


@dataclass(frozen=True)
class EncryptedRecord:
    """A stored ciphertext with its server-side identifier.

    The identifier models "a memory location in the cloud server" (paper
    Def. 1); the content of the record itself would be protected by an
    independent layer of standard encryption and is out of scope, exactly as
    in the paper.
    """

    identifier: int
    ciphertext: Any


class CRSEScheme(abc.ABC, Generic[KeyT, CiphertextT, TokenT]):
    """Symmetric-key CRSE over a data space and a bilinear-group backend."""

    def __init__(self, space: DataSpace, group: CompositeBilinearGroup):
        self.space = space
        self.group = group

    # ------------------------------------------------------------------
    # The four algorithms of Def. 1
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def gen_key(self, rng: random.Random) -> KeyT:
        """``GenKey(1^λ, Δ^w_T)``: generate the secret key."""

    @abc.abstractmethod
    def encrypt(
        self, key: KeyT, point: Sequence[int], rng: random.Random
    ) -> CiphertextT:
        """``Enc(SK, D)``: encrypt one data record."""

    @abc.abstractmethod
    def gen_token(
        self, key: KeyT, circle: Circle, rng: random.Random
    ) -> TokenT:
        """``GenToken(SK, Q)``: build a search token for a query circle."""

    @abc.abstractmethod
    def matches(self, token: TokenT, ciphertext: CiphertextT) -> bool:
        """The Boolean core of ``Search``: is the point inside the circle?"""

    # ------------------------------------------------------------------
    # Paper-faithful Search and bookkeeping
    # ------------------------------------------------------------------
    def search(
        self, token: TokenT, record: EncryptedRecord
    ) -> int | None:
        """``Search(TK, C)``: the record's identifier, or None for ``⊥``."""
        return record.identifier if self.matches(token, record.ciphertext) else None

    @abc.abstractmethod
    def inner_product_bound(self) -> int:
        """Largest honest inner-product magnitude this scheme can produce.

        Correctness requires the group's payload prime to exceed this value
        (see :meth:`repro.crypto.groups.base.CompositeBilinearGroup.exponent_bound_ok`).
        """

    def check_group_supports_space(self) -> None:
        """Raise if the group's payload prime is too small for correctness.

        Raises:
            SchemeError: If false positives would be possible.
        """
        bound = self.inner_product_bound()
        if not self.group.exponent_bound_ok(bound):
            raise SchemeError(
                f"payload prime {self.group.subgroup_primes[1]} does not "
                f"exceed the inner-product bound {bound}; generate parameters "
                "with repro.crypto.groups.params_for_bound"
            )


def encrypt_dataset(
    scheme: CRSEScheme,
    key: Any,
    points: Iterable[Sequence[int]],
    rng: random.Random,
) -> list[EncryptedRecord]:
    """Encrypt a dataset record by record, assigning sequential identifiers."""
    return [
        EncryptedRecord(identifier=i, ciphertext=scheme.encrypt(key, point, rng))
        for i, point in enumerate(points)
    ]


def linear_search(
    scheme: CRSEScheme, token: Any, records: Iterable[EncryptedRecord]
) -> list[int]:
    """The paper's linear scan: identifiers of all matching records."""
    matches = []
    for record in records:
        identifier = scheme.search(token, record)
        if identifier is not None:
            matches.append(identifier)
    return matches
