"""Circle Predicate Encryption (paper Sec. V, Fig. 4).

CPE tests whether an encrypted point lies exactly **on the boundary** of a
query circle: split the circle polynomial into an inner product (Eq. 2) and
run SSW.  It is the stepping stone for both CRSE schemes — CRSE-II literally
issues one CPE sub-token per concentric circle.

``D ∈* Q`` denotes "on the boundary"; ``Query`` outputs 1 iff the boundary
polynomial vanishes at the point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import Circle, DataSpace
from repro.core.split import SplitForm, split_boundary
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.ssw import (
    SSWCiphertext,
    SSWSecretKey,
    SSWToken,
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_setup,
)
from repro.errors import SchemeError

__all__ = ["CPEKey", "CPECiphertext", "CPEToken", "CirclePredicateEncryption"]


@dataclass(frozen=True)
class CPEKey:
    """CPE secret key: an SSW key plus the public split form.

    ``{w, T, α, f_u, f_v}`` are public parameters (paper Fig. 4); only the
    SSW key material is secret.
    """

    ssw: SSWSecretKey
    split: SplitForm
    space: DataSpace


@dataclass(frozen=True)
class CPECiphertext:
    """Encryption of one point's boundary-test vector ``f_u(D)``."""

    ssw: SSWCiphertext


@dataclass(frozen=True)
class CPEToken:
    """Search token for one circle's vector ``f_v(Q)``."""

    ssw: SSWToken


class CirclePredicateEncryption:
    """The CPE scheme: ``GenKey``, ``Enc``, ``GenToken``, ``Query``."""

    def __init__(self, space: DataSpace, group: CompositeBilinearGroup):
        """Bind the scheme to a data space and a group backend.

        Raises:
            SchemeError: If the group's payload prime is too small for the
                space (would admit false positives).
        """
        self.space = space
        self.group = group
        self._split = split_boundary(space.w)
        if not group.exponent_bound_ok(space.boundary_value_bound()):
            raise SchemeError(
                "payload prime too small for this data space; use "
                "repro.crypto.groups.params_for_bound("
                f"{space.boundary_value_bound()})"
            )

    @property
    def alpha(self) -> int:
        """Vector length ``α = w + 2``."""
        return self._split.alpha

    def gen_key(self, rng: random.Random) -> CPEKey:
        """``GenKey(1^λ, Δ^w_T)``: compute ``Split(P)`` and run SSW setup."""
        return CPEKey(
            ssw=ssw_setup(self.group, self._split.alpha, rng),
            split=self._split,
            space=self.space,
        )

    def encrypt(
        self, key: CPEKey, point: Sequence[int], rng: random.Random
    ) -> CPECiphertext:
        """``Enc(SK, D)``: encrypt ``f_u(D)`` under SSW."""
        point = self.space.validate_point(point)
        vector = key.split.f_u(point)
        return CPECiphertext(ssw=ssw_encrypt(key.ssw, vector, rng))

    def gen_token(
        self, key: CPEKey, circle: Circle, rng: random.Random
    ) -> CPEToken:
        """``GenToken(SK, Q)``: tokenize ``f_v(Q)`` under SSW.

        Unlike a full CRSE query, a CPE circle may have any squared radius
        up to the space diameter — including radii whose circles contain no
        lattice point at all.
        """
        self.space.validate_circle(circle)
        vector = key.split.f_v(circle.center, [circle.r_squared])
        return CPEToken(ssw=ssw_gen_token(key.ssw, vector, rng))

    def query(self, token: CPEToken, ciphertext: CPECiphertext) -> bool:
        """``Query(TK, C)``: True iff ``D ∈* Q`` (point on the boundary)."""
        return ssw_query(token.ssw, ciphertext.ssw)
