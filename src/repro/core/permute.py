"""``Permute``: reordering CRSE-II sub-tokens (paper Sec. VI-C).

CRSE-II issues one sub-token per concentric circle; shipping them in radius
order would tell the server *which* concentric circle produced a match.  The
paper therefore permutes the ``m`` sub-tokens "with a fresh random β each
time", β ∈ [1, m!].

We realize β exactly as that integer index via the factorial number system
(Lehmer code), so ``permute(seq, beta)`` is a bijection between ``[1, m!]``
and the permutations of ``seq`` — convenient for tests (every β is reachable
and invertible) and faithful to the paper's notation.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

from repro.errors import ParameterError

__all__ = ["permute", "random_beta", "permutation_from_beta"]

T = TypeVar("T")


def permutation_from_beta(n: int, beta: int) -> list[int]:
    """Decode β ∈ [1, n!] into a permutation of ``range(n)`` (Lehmer code).

    Raises:
        ParameterError: If β is out of range.
    """
    if n < 0:
        raise ParameterError("sequence length must be non-negative")
    total = math.factorial(n)
    if not 1 <= beta <= total:
        # β is the radius-hiding permutation secret — report only the
        # valid range, never the value itself.
        raise ParameterError(f"beta must be in [1, {total}]")
    index = beta - 1
    digits = []
    for base in range(1, n + 1):
        digits.append(index % base)
        index //= base
    digits.reverse()  # most-significant factorial digit first
    pool = list(range(n))
    return [pool.pop(d) for d in digits]


def permute(sequence: Sequence[T], beta: int) -> list[T]:
    """Apply the β-th permutation to *sequence* (β ∈ [1, len!])."""
    order = permutation_from_beta(len(sequence), beta)
    return [sequence[i] for i in order]


def random_beta(n: int, rng: random.Random) -> int:
    """Sample a fresh uniform β ∈ [1, n!]."""
    if n < 0:
        raise ParameterError("sequence length must be non-negative")
    return rng.randrange(math.factorial(n)) + 1
