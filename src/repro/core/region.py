"""Arbitrary lattice-region queries over CRSE-II ciphertexts.

The simplex extension (:mod:`repro.core.simplex`) is one instance of a more
general principle: *any* finite set of lattice points can be queried with
one degenerate-circle (``r = 0``) sub-token per point, under the unmodified
CRSE-II keys and ciphertexts.  This module exposes that principle directly:

* :func:`gen_region_token` — a permuted token matching exactly a given
  point set;
* :class:`Rectangle` — axis-aligned boxes (the "rectangular range search"
  of the paper's Related Work, here answered **exactly** rather than via
  the leaky OPE baseline), which plug into the same token builder.

Cost and leakage follow CRSE-II's pattern: ``O(#points)`` sub-tokens, the
count leaking the region's size unless padded with dummies.  For circles
this construction would be strictly worse than CRSE-II proper (a circle of
radius R holds ~πR² lattice points but only m ≈ O(R²·0.76/√log R) covering
circles — and m counts *circles*, each handling many points at once), which
is exactly why the paper's concentric-circle covering is the clever move;
the ablation benchmark quantifies the gap.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.crse2 import CRSE2Key, CRSE2Scheme, CRSE2Token, dummy_circle
from repro.core.geometry import Circle
from repro.core.permute import permute, random_beta
from repro.crypto.ssw import ssw_gen_token
from repro.errors import ParameterError, SchemeError

__all__ = ["Rectangle", "gen_region_token"]


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned closed box with integer corners."""

    mins: tuple[int, ...]
    maxs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.maxs) or not self.mins:
            raise ParameterError("rectangle needs matching min/max corners")
        if any(lo > hi for lo, hi in zip(self.mins, self.maxs)):
            raise ParameterError("rectangle has min > max")
        object.__setattr__(self, "mins", tuple(self.mins))
        object.__setattr__(self, "maxs", tuple(self.maxs))

    @property
    def w(self) -> int:
        """Dimension of the ambient space."""
        return len(self.mins)

    def contains(self, point: Sequence[int]) -> bool:
        """Plaintext predicate: inside or on the boundary of the box."""
        return len(point) == self.w and all(
            lo <= c <= hi for lo, c, hi in zip(self.mins, point, self.maxs)
        )

    def lattice_points(self) -> list[tuple[int, ...]]:
        """All integer points in the box."""
        return list(
            itertools.product(
                *(range(lo, hi + 1) for lo, hi in zip(self.mins, self.maxs))
            )
        )

    def point_count(self) -> int:
        """``∏ (max_d - min_d + 1)`` without materializing the points."""
        count = 1
        for lo, hi in zip(self.mins, self.maxs):
            count *= hi - lo + 1
        return count


def gen_region_token(
    scheme: CRSE2Scheme,
    key: CRSE2Key,
    points: Sequence[Sequence[int]],
    rng: random.Random,
    hide_count_to: int | None = None,
) -> CRSE2Token:
    """Build a permuted CRSE-II token matching exactly *points*.

    Each point becomes the degenerate circle ``{point, r = 0}``, whose CPE
    boundary test matches that point and nothing else.

    Args:
        scheme: A CRSE-II scheme (or subclass); supplies space and split.
        key: The CRSE-II secret key.
        points: The query region as an explicit lattice-point set; must be
            non-empty, deduplicated here, every point inside the space.
        rng: Randomness for SSW and the permutation β.
        hide_count_to: Pad with dummy sub-tokens up to this total, hiding
            the region's size (the analogue of radius hiding).

    Raises:
        SchemeError / ParameterError: On empty regions, out-of-space points,
            or insufficient padding.
    """
    unique = sorted({tuple(p) for p in points})
    if not unique:
        raise SchemeError("region query needs at least one point")
    for point in unique:
        if not scheme.space.contains_point(point):
            raise ParameterError("a region query point is outside the space")
    circles = [Circle(point, 0) for point in unique]
    if hide_count_to is not None:
        if hide_count_to < len(circles):
            raise SchemeError(
                f"cannot hide {len(circles)} sub-tokens inside {hide_count_to}"
            )
        circles.extend(
            dummy_circle(scheme.space, unique[0])
            for _ in range(hide_count_to - len(circles))
        )
    sub_tokens = [
        ssw_gen_token(key.ssw, key.split.f_v(c.center, [c.r_squared]), rng)
        for c in circles
    ]
    beta = random_beta(len(sub_tokens), rng)
    return CRSE2Token(sub_tokens=tuple(permute(sub_tokens, beta)))
