"""``Split``: turning circle polynomials into inner products (Sec. V, VI-B).

The key trick of the paper: a boundary test is a polynomial identity

    P_i(D) = Σ_k (x_k - c_k)² - r_i²  =  ⟨f_u(D), f_v(Q_i)⟩

with the *point* variables separated into ``f_u`` and the *circle*
parameters into ``f_v``.  For one circle (CPE) the split uses the basis

    U = (Σ x_k², -2x_1, …, -2x_w, 1)
    V = (1, c_1, …, c_w, Σ c_k² - r²)

of length ``α = w + 2`` (paper Eq. 2/4).  CRSE-I multiplies the ``m``
concentric-circle polynomials into ``P = P_1 ⋯ P_m`` and splits the product
(paper Eq. 5/6): expanding distributes into ``(w+2)^m`` terms, one per
assignment of a basis index to each factor.  The paper notes α "can be
reduced by further simplifying polynomial P (e.g., the optimized value of α
could be 10 … instead of 16)" — that reduction is exactly merging terms with
equal point-monomials, i.e. grouping assignments by multiset, which this
module implements as the *optimized* split.

``Split`` is deterministic and needs only the general form (``w`` and ``m``),
never the concrete values — matching the paper's requirement that the split
be a public parameter.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParameterError
from repro.math.polynomial import Polynomial

__all__ = [
    "SplitForm",
    "split_boundary",
    "split_product",
    "naive_alpha",
    "optimized_alpha",
]

# Refuse to expand products whose naive term count exceeds this; CRSE-I is
# O((w+2)^m) by design (the paper calls it "impractical for circular range
# queries with large radiuses") and beyond this limit even building the
# public parameters is hopeless.
_MAX_NAIVE_TERMS = 4_000_000


def _u_basis(w: int) -> list[Polynomial]:
    """The point-side basis ``U`` for one boundary polynomial."""
    sum_of_squares = Polynomial.zero(w)
    for k in range(w):
        xk = Polynomial.variable(w, k)
        sum_of_squares = sum_of_squares + xk * xk
    basis = [sum_of_squares]
    basis.extend(-2 * Polynomial.variable(w, k) for k in range(w))
    basis.append(Polynomial.one(w))
    return basis


def _v_value(j: int, w: int, center: Sequence[int], r_squared: int) -> int:
    """The circle-side basis value ``V_j`` for one factor."""
    if j == 0:
        return 1
    if 1 <= j <= w:
        return center[j - 1]
    return sum(c * c for c in center) - r_squared


@dataclass(frozen=True)
class SplitForm:
    """The public output of ``Split``: ``(α, f_u, f_v)`` for a product of
    ``m`` boundary polynomials in ``w`` dimensions.

    Attributes:
        w: Spatial dimension.
        m: Number of boundary-polynomial factors (1 for CPE).
        u_polys: Per-entry point polynomials (the symbolic ``f_u``).
        assignments: Per-entry tuple of index assignments; entry ``e`` of
            ``f_v`` sums ``∏_k V_{a[k]}(center, r_k²)`` over its assignments
            ``a``.  Naive splits have one assignment per entry; optimized
            splits merge all assignments sharing a point-monomial.
    """

    w: int
    m: int
    u_polys: tuple[Polynomial, ...]
    assignments: tuple[tuple[tuple[int, ...], ...], ...]

    @property
    def alpha(self) -> int:
        """The vector length ``α``."""
        return len(self.u_polys)

    def f_u(self, point: Sequence[int]) -> list[int]:
        """Evaluate the point-side vector ``f_u(D)``."""
        if len(point) != self.w:
            raise ParameterError(
                f"point has {len(point)} coordinates, split expects {self.w}"
            )
        return [poly.evaluate(point) for poly in self.u_polys]

    def f_v(
        self, center: Sequence[int], radii_squared: Sequence[int]
    ) -> list[int]:
        """Evaluate the circle-side vector ``f_v(Q_1, …, Q_m)``.

        Args:
            center: The common center of the concentric circles.
            radii_squared: One squared radius per factor (length ``m``).

        Raises:
            ParameterError: On arity mismatches.
        """
        if len(center) != self.w:
            raise ParameterError(
                f"center has {len(center)} coordinates, split expects {self.w}"
            )
        if len(radii_squared) != self.m:
            raise ParameterError(
                f"{len(radii_squared)} radii given, split has {self.m} factors"
            )
        entries = []
        for assignment_set in self.assignments:
            total = 0
            for assignment in assignment_set:
                term = 1
                for k, j in enumerate(assignment):
                    term *= _v_value(j, self.w, center, radii_squared[k])
                total += term
            entries.append(total)
        return entries

    def product_polynomial_value(
        self,
        point: Sequence[int],
        center: Sequence[int],
        radii_squared: Sequence[int],
    ) -> int:
        """Plaintext reference value ``P(D) = ∏_i P_i(D)``.

        The split is correct iff this always equals
        ``⟨f_u(point), f_v(center, radii)⟩`` — the test suite checks exactly
        that.
        """
        value = 1
        for r_sq in radii_squared:
            p_i = (
                sum((x - c) * (x - c) for x, c in zip(point, center)) - r_sq
            )
            value *= p_i
        return value


def split_boundary(w: int) -> SplitForm:
    """``Split`` for a single boundary polynomial — the CPE case (Eq. 4).

    Returns a form with ``α = w + 2``.
    """
    if w < 1:
        raise ParameterError("dimension must be at least 1")
    basis = _u_basis(w)
    return SplitForm(
        w=w,
        m=1,
        u_polys=tuple(basis),
        assignments=tuple(((j,),) for j in range(w + 2)),
    )


def naive_alpha(w: int, m: int) -> int:
    """Vector length of the naive product split: ``(w+2)^m``."""
    return (w + 2) ** m


def optimized_alpha(w: int, m: int) -> int:
    """Vector length after merging by point-monomial: ``C(m+w+1, w+1)``."""
    return math.comb(m + w + 1, w + 1)


def split_product(w: int, m: int, optimize: bool = True) -> SplitForm:
    """``Split`` for the CRSE-I product polynomial ``P = P_1 ⋯ P_m``.

    Args:
        w: Spatial dimension.
        m: Number of concentric circles (factors).
        optimize: Merge entries whose point-monomials coincide, reducing
            ``α`` from ``(w+2)^m`` to ``C(m+w+1, w+1)`` (the paper's
            "optimized value of α" remark under Eq. 5).

    Raises:
        ParameterError: If the naive expansion would exceed the supported
            size — CRSE-I's documented scalability limit.
    """
    if w < 1:
        raise ParameterError("dimension must be at least 1")
    if m < 1:
        raise ParameterError("the product needs at least one factor")
    if naive_alpha(w, m) > _MAX_NAIVE_TERMS:
        raise ParameterError(
            f"CRSE-I split with w={w}, m={m} needs {naive_alpha(w, m)} terms; "
            "this exceeds the supported expansion size (the scheme is "
            "exponential in m by design)"
        )
    basis = _u_basis(w)
    if not optimize:
        u_polys = []
        assignments = []
        for assignment in itertools.product(range(w + 2), repeat=m):
            poly = Polynomial.one(w)
            for j in assignment:
                poly = poly * basis[j]
            u_polys.append(poly)
            assignments.append((assignment,))
        return SplitForm(
            w=w, m=m, u_polys=tuple(u_polys), assignments=tuple(assignments)
        )

    # Optimized: group assignments by their index multiset.  The point-side
    # product depends only on the multiset, so all assignments in a group
    # share one u-entry whose v-entry is the sum of their circle products.
    grouped: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
    for assignment in itertools.product(range(w + 2), repeat=m):
        grouped.setdefault(tuple(sorted(assignment)), []).append(assignment)
    u_polys = []
    assignments = []
    for multiset in sorted(grouped):
        poly = Polynomial.one(w)
        for j in multiset:
            poly = poly * basis[j]
        u_polys.append(poly)
        assignments.append(tuple(grouped[multiset]))
    return SplitForm(
        w=w, m=m, u_polys=tuple(u_polys), assignments=tuple(assignments)
    )
